"""Dense matrix compute backend for the clustering hot paths.

The reference implementation of the paper works entirely over
dict-backed :class:`~repro.vsm.vector.SparseVector`s — one
``cosine_similarity`` call per (page, center) pair, one scalar
Levenshtein per subtree pair. That is faithful to the paper but leaves
the headline scalability claims (Figs. 5/7) bottlenecked on Python
interpreter overhead rather than on the algorithms themselves.

This module interns the feature vocabulary of a vector collection into
a dense ``numpy`` matrix (:class:`VectorSpace`) and provides the three
batched kernels the pipeline needs:

- :func:`cosine_matrix` — all pairwise cosines in one matmul,
- :func:`group_sums` / :func:`centroid_matrix` — per-cluster segment
  sums via ``np.add.at``,
- :func:`pairwise_normalized_levenshtein` — the Phase-2 path-distance
  term, with the DP inner loop vectorized over numpy rows plus an
  exact-match / length-band early exit and an interned-pair memo.

numpy is an install-time dependency but the import is gated so the
pure-python reference backend keeps working on a stripped environment:
``HAVE_NUMPY`` is ``False`` and :func:`repro.config.resolve_backend`
falls back to ``"python"``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.vsm.vector import SparseVector

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - stripped environments only
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False


def _require_numpy() -> None:
    if not HAVE_NUMPY:  # pragma: no cover - stripped environments only
        raise RuntimeError(
            "the numpy compute backend is unavailable; "
            "select backend='python' (see repro.config.resolve_backend)"
        )


class VectorSpace:
    """A collection of sparse vectors interned into a dense matrix.

    Feature names are assigned column indices in first-seen order, so
    building a space is deterministic for a given vector sequence.
    ``matrix`` has one row per input vector and ``norms`` holds the
    precomputed Euclidean row norms (zero rows keep norm 0).
    """

    __slots__ = ("vocabulary", "features", "matrix", "norms")

    def __init__(self, vocabulary: dict[str, int], matrix, norms) -> None:
        self.vocabulary = vocabulary
        self.features: list[str] = list(vocabulary)
        self.matrix = matrix
        self.norms = norms

    @classmethod
    def build(cls, vectors: Sequence[SparseVector]) -> "VectorSpace":
        """Intern ``vectors`` into a dense (n × |vocabulary|) matrix."""
        _require_numpy()
        vocabulary: dict[str, int] = {}
        for vector in vectors:
            for feature in vector:
                if feature not in vocabulary:
                    vocabulary[feature] = len(vocabulary)
        matrix = np.zeros((len(vectors), len(vocabulary)), dtype=np.float64)
        for row, vector in enumerate(vectors):
            for feature, weight in vector.items():
                matrix[row, vocabulary[feature]] = weight
        norms = np.linalg.norm(matrix, axis=1)
        return cls(vocabulary, matrix, norms)

    @property
    def n(self) -> int:
        return self.matrix.shape[0]

    @property
    def dimensions(self) -> int:
        return self.matrix.shape[1]

    def encode(self, vectors: Sequence[SparseVector]):
        """Project ``vectors`` into this space (unknown features drop)."""
        out = np.zeros((len(vectors), self.dimensions), dtype=np.float64)
        vocabulary = self.vocabulary
        for row, vector in enumerate(vectors):
            for feature, weight in vector.items():
                column = vocabulary.get(feature)
                if column is not None:
                    out[row, column] = weight
        return out

    def to_sparse(self, row) -> SparseVector:
        """Decode one matrix row back into a :class:`SparseVector`."""
        features = self.features
        nonzero = np.flatnonzero(row)
        return SparseVector({features[j]: float(row[j]) for j in nonzero})


def weighted_space(count_maps, weighting: str = "tfidf") -> "VectorSpace":
    """Vectorized fit+transform: frequency maps straight into a space.

    Mirrors :class:`repro.vsm.weighting.CorpusWeighter` fit+transform
    (``weighting="tfidf"``) or :func:`repro.vsm.weighting.raw_tf_vector`
    (``weighting="raw"``) without materializing a ``SparseVector`` per
    document — the weighting itself was the dominant cost once the
    clustering iterations moved to matmuls. Weights agree with the
    scalar path to float rounding (``np.log`` vs ``math.log`` may
    differ in the last ulp).
    """
    _require_numpy()
    vocabulary: dict[str, int] = {}
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for row, counts in enumerate(count_maps):
        for feature, count in counts.items():
            if count <= 0:
                continue
            col = vocabulary.get(feature)
            if col is None:
                col = vocabulary[feature] = len(vocabulary)
            rows.append(row)
            cols.append(col)
            vals.append(count)
    matrix = np.zeros((len(count_maps), len(vocabulary)), dtype=np.float64)
    # One fancy-index scatter instead of a numpy scalar write per cell.
    matrix[rows, cols] = vals
    if weighting == "tfidf":
        doc_freq = (matrix > 0.0).sum(axis=0)
        idf = np.log(
            (len(count_maps) + 1)
            / np.maximum(doc_freq, 1)  # empty vocabulary guard only
        )
        matrix = np.log(matrix + 1.0) * idf
    elif weighting != "raw":
        raise ValueError(f"unknown weighting {weighting!r} (use 'raw' or 'tfidf')")
    norms = np.linalg.norm(matrix, axis=1)
    nonzero = norms > 0.0
    matrix[nonzero] /= norms[nonzero, None]
    return VectorSpace(vocabulary, matrix, np.linalg.norm(matrix, axis=1))


def tfidf_statistics(count_maps):
    """The fitted parameters of a tf-idf space: ``(vocabulary, idf)``.

    Mirrors the ``weighting="tfidf"`` branch of :func:`weighted_space`
    exactly (same first-seen column order, same smoothing), but returns
    the reusable fit state instead of the transformed matrix. The
    incremental model (:mod:`repro.incremental.model`) persists these
    so a later run can encode *new* pages into the stored space without
    refitting — see :func:`encode_tfidf`.
    """
    _require_numpy()
    vocabulary: dict[str, int] = {}
    doc_freq: list[int] = []
    for counts in count_maps:
        for feature, count in counts.items():
            if count <= 0:
                continue
            col = vocabulary.get(feature)
            if col is None:
                vocabulary[feature] = len(vocabulary)
                doc_freq.append(1)
            else:
                doc_freq[col] += 1
    idf = np.log(
        (len(count_maps) + 1)
        / np.maximum(np.asarray(doc_freq, dtype=np.float64), 1)
    )
    return vocabulary, idf


def encode_tfidf(count_maps, vocabulary: dict[str, int], idf):
    """Encode documents into a *stored* tf-idf space (assign, don't fit).

    Applies the exact transform of :func:`weighted_space`'s tfidf
    branch — ``log(count + 1) * idf`` then L2 row normalization — using
    a previously fitted ``(vocabulary, idf)`` pair from
    :func:`tfidf_statistics`. Features outside the stored vocabulary
    drop (a genuinely new tag contributes nothing to similarity, which
    is what pulls drifted pages *away* from every stored centroid).
    Returns a dense ``(len(count_maps) × |vocabulary|)`` matrix.
    """
    _require_numpy()
    matrix = np.zeros((len(count_maps), len(vocabulary)), dtype=np.float64)
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for row, counts in enumerate(count_maps):
        for feature, count in counts.items():
            if count <= 0:
                continue
            col = vocabulary.get(feature)
            if col is not None:
                rows.append(row)
                cols.append(col)
                vals.append(count)
    matrix[rows, cols] = vals
    matrix = np.log(matrix + 1.0) * np.asarray(idf, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=1)
    nonzero = norms > 0.0
    matrix[nonzero] /= norms[nonzero, None]
    return matrix


def cosine_matrix(a, b, norms_a=None, norms_b=None):
    """All pairwise cosine similarities between the rows of ``a`` and
    ``b`` in a single matmul.

    Rows with zero norm are orthogonal to everything (similarity 0),
    matching :func:`repro.vsm.similarity.cosine_similarity`; values are
    clipped into [-1, 1] against floating-point drift.
    """
    _require_numpy()
    if norms_a is None:
        norms_a = np.linalg.norm(a, axis=1)
    if norms_b is None:
        norms_b = np.linalg.norm(b, axis=1)
    sims = a @ b.T
    denom = np.outer(norms_a, norms_b)
    nonzero = denom > 0.0
    sims = np.divide(sims, denom, out=np.zeros_like(sims), where=nonzero)
    np.clip(sims, -1.0, 1.0, out=sims)
    return sims


def group_sums(matrix, labels, k):
    """Segment sums: per-cluster componentwise sums and member counts.

    Returns ``(sums, counts)`` where ``sums`` is (k × d) and ``counts``
    is the cluster-size histogram. One ``np.add.at`` scatter replaces
    the per-member dict merging of :func:`repro.vsm.centroid.vector_sum`.
    """
    _require_numpy()
    labels = np.asarray(labels)
    sums = np.zeros((k, matrix.shape[1]), dtype=np.float64)
    np.add.at(sums, labels, matrix)
    counts = np.bincount(labels, minlength=k)
    return sums, counts


def centroid_matrix(matrix, labels, k):
    """Per-cluster centroids (k × d); empty clusters get zero rows.

    Returns ``(centroids, counts)`` so the caller can detect and
    re-seed empty clusters.
    """
    sums, counts = group_sums(matrix, labels, k)
    divisor = np.maximum(counts, 1).astype(np.float64)
    return sums / divisor[:, None], counts


# ---------------------------------------------------------------------------
# Vectorized Levenshtein
# ---------------------------------------------------------------------------

#: Below this |a|·|b| area the scalar two-row DP beats numpy's
#: per-operation overhead (short simplified tag paths live here).
_SCALAR_DP_AREA = 1024

#: Interned-pair memo shared by every call site; simplified code paths
#: and probe URLs repeat heavily, so most lookups hit.
_PAIR_MEMO: dict[tuple[str, str], float] = {}
_PAIR_MEMO_LIMIT = 1 << 17


def _levenshtein_rowwise(a: str, b: str) -> int:
    """Edit distance with the DP inner loop vectorized over numpy rows.

    Each outer step computes a whole DP row with array ops; the
    insertion recurrence (a left-to-right running minimum) is resolved
    with ``np.minimum.accumulate`` over ``row - index`` offsets.
    """
    b_codes = np.fromiter(map(ord, b), dtype=np.int64, count=len(b))
    offsets = np.arange(len(b) + 1, dtype=np.int64)
    previous = offsets.copy()
    current = np.empty(len(b) + 1, dtype=np.int64)
    for i, ca in enumerate(a, start=1):
        substitution = previous[:-1] + (b_codes != ord(ca))
        deletion = previous[1:] + 1
        current[0] = i
        np.minimum(substitution, deletion, out=current[1:])
        # Insertions: current[j] = min_{k<=j}(current[k] + (j - k)).
        np.minimum.accumulate(current - offsets, out=current)
        current += offsets
        previous, current = current, previous
    return int(previous[-1])


def _normalized_distance(a: str, b: str) -> float:
    """Memoized normalized edit distance with early exits."""
    if a == b:  # exact-match early exit (distance 0, no DP)
        return 0.0
    len_a, len_b = len(a), len(b)
    longest = max(len_a, len_b)
    if min(len_a, len_b) == 0:
        # Length-band early exit: |len(a)-len(b)| / max = 1, the DP
        # can only confirm the maximal distance.
        return 1.0
    if a > b:  # the distance is symmetric; normalize the memo key
        a, b = b, a
    key = (a, b)
    cached = _PAIR_MEMO.get(key)
    if cached is not None:
        return cached
    if len_a * len_b < _SCALAR_DP_AREA or not HAVE_NUMPY:
        # Imported lazily: editdist lives in repro.cluster, whose
        # __init__ imports the clusterers, which import this module.
        from repro.cluster.editdist import levenshtein

        distance = levenshtein(a, b)
    else:
        distance = _levenshtein_rowwise(a, b)
    value = distance / longest
    if len(_PAIR_MEMO) >= _PAIR_MEMO_LIMIT:  # pragma: no cover - bound only
        _PAIR_MEMO.clear()
    _PAIR_MEMO[key] = value
    return value


def _memo_store(key: tuple[str, str], value: float) -> float:
    if len(_PAIR_MEMO) >= _PAIR_MEMO_LIMIT:  # pragma: no cover - bound only
        _PAIR_MEMO.clear()
    _PAIR_MEMO[key] = value
    return value


def pairwise_normalized_levenshtein(
    a_strings: Sequence[str], b_strings: Optional[Sequence[str]] = None
):
    """Matrix of normalized edit distances between two string batches.

    With ``b_strings=None`` the (symmetric) self-distance matrix of
    ``a_strings`` is returned and only the upper triangle is computed.
    Equals :func:`repro.cluster.editdist.normalized_levenshtein` entry
    for entry — the kernels compute exact integer edit distances and
    perform the same final division, so both backends agree bitwise.

    Cells are served from the interned-pair memo where possible; every
    cell the memo (and the equal/empty early exits) cannot answer is
    collected and dispatched to
    :func:`repro.cluster.editdist.batch_normalized_levenshtein` in one
    batched int-code DP call, instead of one scalar DP per pair — the
    Phase-2 cold path runs thousands of short-path comparisons per
    cluster, and the per-pair interpreter overhead used to dominate.
    """
    _require_numpy()
    symmetric = b_strings is None
    if symmetric:
        b_strings = a_strings
    out = np.zeros((len(a_strings), len(b_strings)), dtype=np.float64)
    #: Cells the memo cannot answer, keyed by order-normalized pair —
    #: insertion-ordered, so the batch call dedupes repeated pairs.
    pending: dict[tuple[str, str], list[tuple[int, int]]] = {}
    for i, a in enumerate(a_strings):
        for j in range(i + 1 if symmetric else 0, len(b_strings)):
            b = b_strings[j]
            if a == b:
                continue  # exact-match early exit: the cell stays 0.0
            if not a or not b:
                out[i, j] = 1.0  # length-band early exit
                continue
            key = (a, b) if a <= b else (b, a)
            cached = _PAIR_MEMO.get(key)
            if cached is not None:
                out[i, j] = cached
            else:
                pending.setdefault(key, []).append((i, j))
    if pending:
        keys = list(pending)
        if len(keys) == 1:
            # A single miss: the scalar kernel skips batch setup.
            distances = [_normalized_distance(*keys[0])]
        else:
            from repro.cluster.editdist import batch_normalized_levenshtein

            distances = batch_normalized_levenshtein(
                [key[0] for key in keys],
                [key[1] for key in keys],
                backend="numpy",
            )
        for key, value in zip(keys, distances):
            _memo_store(key, value)
            for i, j in pending[key]:
                out[i, j] = value
    if symmetric:
        upper = np.triu_indices(len(a_strings), k=1)
        out[(upper[1], upper[0])] = out[upper]
    return out


def clear_levenshtein_memo() -> None:
    """Drop the interned-pair memo (tests and long-lived processes)."""
    _PAIR_MEMO.clear()


__all__ = [
    "HAVE_NUMPY",
    "VectorSpace",
    "weighted_space",
    "tfidf_statistics",
    "encode_tfidf",
    "cosine_matrix",
    "group_sums",
    "centroid_matrix",
    "pairwise_normalized_levenshtein",
    "clear_levenshtein_memo",
]
