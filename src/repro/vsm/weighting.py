"""Term weighting: raw TF and the paper's TFIDF variant.

The paper weights feature ``k`` in document ``i`` as::

    w_ik = log(tf_ik + 1) * log((n + 1) / n_k)

where ``tf_ik`` is the raw frequency, ``n`` the number of documents and
``n_k`` the number of documents containing feature ``k``. Because of
the ``n + 1`` numerator, a feature occurring in *every* document keeps
a small non-zero weight — the paper argues this matters for tags like
``<table>`` that occur everywhere but in varying degrees. Vectors are
normalized to unit length after weighting.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.vsm.vector import SparseVector


def raw_tf_vector(counts: Mapping[str, int], normalize: bool = True) -> SparseVector:
    """Vector of raw frequencies (optionally unit-normalized).

    A document with no features yields the zero vector (normalization
    is skipped for it rather than raising — empty pages do occur).
    """
    vector = SparseVector({k: float(v) for k, v in counts.items()})
    if normalize and not vector.is_zero():
        return vector.normalized()
    return vector


def paper_tfidf_weight(tf: int, n_docs: int, doc_freq: int) -> float:
    """The paper's per-feature weight ``log(tf+1) · log((n+1)/n_k)``.

    >>> round(paper_tfidf_weight(3, 10, 2), 4)
    2.3633
    """
    if tf <= 0 or doc_freq <= 0:
        return 0.0
    return math.log(tf + 1) * math.log((n_docs + 1) / doc_freq)


class CorpusWeighter:
    """TFIDF weighting fit on a corpus of frequency maps.

    Usage::

        weighter = CorpusWeighter.fit(count_maps)
        vectors = [weighter.transform(c) for c in count_maps]

    ``transform`` accepts documents outside the fitted corpus too
    (features never seen get document frequency 0 → weight 0, i.e.
    unseen features are ignored, the standard IR convention).
    """

    def __init__(self, n_docs: int, doc_freq: Mapping[str, int]) -> None:
        if n_docs < 0:
            raise ValueError("n_docs must be non-negative")
        self.n_docs = n_docs
        self.doc_freq = dict(doc_freq)

    @classmethod
    def fit(cls, documents: Sequence[Mapping[str, int]]) -> "CorpusWeighter":
        """Compute document frequencies over ``documents``."""
        doc_freq: dict[str, int] = {}
        for counts in documents:
            for feature, count in counts.items():
                if count > 0:
                    doc_freq[feature] = doc_freq.get(feature, 0) + 1
        return cls(len(documents), doc_freq)

    def idf(self, feature: str) -> float:
        """``log((n+1)/n_k)`` for a feature; 0 for unseen features."""
        df = self.doc_freq.get(feature, 0)
        if df == 0:
            return 0.0
        return math.log((self.n_docs + 1) / df)

    def transform(self, counts: Mapping[str, int], normalize: bool = True) -> SparseVector:
        """Weight one document's frequency map into a vector."""
        weights = {}
        for feature, tf in counts.items():
            if tf <= 0:
                continue
            df = self.doc_freq.get(feature, 0)
            if df == 0:
                continue
            weights[feature] = math.log(tf + 1) * math.log((self.n_docs + 1) / df)
        vector = SparseVector(weights)
        if normalize and not vector.is_zero():
            return vector.normalized()
        return vector

    def transform_all(
        self, documents: Iterable[Mapping[str, int]], normalize: bool = True
    ) -> list[SparseVector]:
        return [self.transform(counts, normalize) for counts in documents]


def tfidf_vectors(
    documents: Sequence[Mapping[str, int]], normalize: bool = True
) -> list[SparseVector]:
    """One-shot fit+transform over a corpus of frequency maps."""
    weighter = CorpusWeighter.fit(documents)
    return weighter.transform_all(documents, normalize)
