"""Sparse feature vectors.

A :class:`SparseVector` maps feature names (tag names, stemmed terms)
to float weights. Only non-zero entries are stored; all operations are
O(number of non-zeros). The vector is immutable in spirit — operations
return new vectors — which keeps clustering code free of aliasing bugs.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping

from repro.errors import VectorError


class SparseVector:
    """An immutable sparse vector over string-named dimensions."""

    __slots__ = ("_data", "_norm")

    def __init__(self, data: Mapping[str, float] | Iterable[tuple[str, float]] = ()):
        entries = dict(data)
        self._data: dict[str, float] = {k: float(v) for k, v in entries.items() if v}
        self._norm: float | None = None

    # -- inspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __contains__(self, feature: str) -> bool:
        return feature in self._data

    def __getitem__(self, feature: str) -> float:
        return self._data.get(feature, 0.0)

    def get(self, feature: str, default: float = 0.0) -> float:
        return self._data.get(feature, default)

    def items(self):
        return self._data.items()

    def features(self) -> set[str]:
        return set(self._data)

    def to_dict(self) -> dict[str, float]:
        return dict(self._data)

    def __repr__(self) -> str:
        head = sorted(self._data.items(), key=lambda kv: -abs(kv[1]))[:4]
        preview = ", ".join(f"{k}={v:.3g}" for k, v in head)
        suffix = ", ..." if len(self._data) > 4 else ""
        return f"SparseVector({{{preview}{suffix}}}, dims={len(self._data)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self._data == other._data

    def __hash__(self):  # pragma: no cover - explicit unhashability
        raise TypeError("SparseVector is not hashable")

    # -- algebra -------------------------------------------------------

    @property
    def norm(self) -> float:
        """Euclidean (L2) norm; cached after first computation."""
        if self._norm is None:
            self._norm = math.sqrt(sum(w * w for w in self._data.values()))
        return self._norm

    def is_zero(self) -> bool:
        return not self._data

    def dot(self, other: "SparseVector") -> float:
        """Inner product; iterates over the smaller vector."""
        a, b = self._data, other._data
        if len(b) < len(a):
            a, b = b, a
        return sum(w * b[f] for f, w in a.items() if f in b)

    def normalized(self) -> "SparseVector":
        """Return a unit-length copy.

        Raises :class:`VectorError` for the zero vector — a page with no
        features cannot be placed on the unit sphere.
        """
        n = self.norm
        if n == 0.0:
            raise VectorError("cannot normalize the zero vector")
        return SparseVector({f: w / n for f, w in self._data.items()})

    def scale(self, factor: float) -> "SparseVector":
        return SparseVector({f: w * factor for f, w in self._data.items()})

    def add(self, other: "SparseVector") -> "SparseVector":
        data = dict(self._data)
        for f, w in other._data.items():
            data[f] = data.get(f, 0.0) + w
        return SparseVector(data)

    def subtract(self, other: "SparseVector") -> "SparseVector":
        data = dict(self._data)
        for f, w in other._data.items():
            data[f] = data.get(f, 0.0) - w
        return SparseVector(data)

    def __add__(self, other: "SparseVector") -> "SparseVector":
        return self.add(other)

    def __sub__(self, other: "SparseVector") -> "SparseVector":
        return self.subtract(other)

    def __mul__(self, factor: float) -> "SparseVector":
        return self.scale(factor)

    __rmul__ = __mul__


EMPTY_VECTOR = SparseVector()
