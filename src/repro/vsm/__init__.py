"""Vector-space substrate: sparse vectors, TFIDF weighting, similarity.

Implements the vector model of Section 3.1.2: pages (and subtrees) are
sparse vectors of (feature, weight) pairs, weighted with the paper's
TFIDF variant ``w = log(tf+1) · log((n+1)/n_k)``, normalized, and
compared with cosine similarity.

:mod:`repro.vsm.matrix` adds the vectorized numpy compute backend
(:class:`~repro.vsm.matrix.VectorSpace` and the batched kernels); it
is intentionally *not* imported here — the clusterers import it
directly, and the import is numpy-gated.
"""

from repro.vsm.vector import SparseVector
from repro.vsm.weighting import CorpusWeighter, paper_tfidf_weight, raw_tf_vector
from repro.vsm.similarity import cosine_similarity, dot_product, minkowski_distance
from repro.vsm.centroid import centroid

__all__ = [
    "SparseVector",
    "CorpusWeighter",
    "paper_tfidf_weight",
    "raw_tf_vector",
    "cosine_similarity",
    "dot_product",
    "minkowski_distance",
    "centroid",
]
