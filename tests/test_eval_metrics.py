"""Tests for precision/recall scoring of pagelets and objects."""

from __future__ import annotations

import pytest

from repro.core.page import Page
from repro.core.pagelet import PartitionedPagelet, QAObject, QAPagelet
from repro.deepweb.site import LabeledPage
from repro.errors import EvaluationError
from repro.eval.metrics import (
    PageletScore,
    _paths_overlap,
    score_objects,
    score_pagelets,
)
from repro.html.paths import node_path


def labeled(html, gold_path=None, gold_objects=(), query="q"):
    return LabeledPage(
        html,
        url="http://s/?q=" + query,
        query=query,
        class_label="multi" if gold_path else "nomatch",
        gold_pagelet_path=gold_path,
        gold_object_paths=tuple(gold_objects),
    )


def pagelet_at(page, path):
    from repro.html.paths import resolve_path

    node = resolve_path(page.tree, path)
    return QAPagelet(page=page, path=path, node=node)


HTML = "<html><body><table><tr><td>x</td></tr></table><p>f</p></body></html>"


class TestPageletScore:
    def test_perfect(self):
        score = PageletScore(5, 5, 5)
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.f1 == 1.0

    def test_zero_identified_with_gold(self):
        score = PageletScore(0, 0, 3)
        assert score.precision == 0.0
        assert score.recall == 0.0
        assert score.f1 == 0.0

    def test_zero_identified_zero_gold(self):
        score = PageletScore(0, 0, 0)
        assert score.precision == 1.0
        assert score.recall == 1.0

    def test_merge_pools_counts(self):
        merged = PageletScore(1, 2, 3, 1).merge(PageletScore(2, 2, 3, 2))
        assert merged.true_positives == 3
        assert merged.identified == 4
        assert merged.total_gold == 6
        assert merged.overlapping == 3

    def test_f1_harmonic(self):
        score = PageletScore(1, 2, 1)  # P=0.5, R=1.0
        assert abs(score.f1 - 2 * 0.5 / 1.5) < 1e-12


class TestPathsOverlap:
    def test_equal(self):
        assert _paths_overlap("html/body/table", "html/body/table")

    def test_ancestor(self):
        assert _paths_overlap("html/body", "html/body/table/tr")
        assert _paths_overlap("html/body/table/tr", "html/body")

    def test_disjoint(self):
        assert not _paths_overlap("html/body/table[1]", "html/body/table[2]")

    def test_index_normalization(self):
        # table (implicit [1]) is an ancestor of table[1]/tr but not
        # of table[2]/tr.
        assert _paths_overlap("html/body/table", "html/body/table[1]/tr")


class TestScorePagelets:
    def test_exact_match_counts(self):
        page = labeled(HTML, "html/body/table")
        score = score_pagelets([pagelet_at(page, "html/body/table")], [page])
        assert score.true_positives == 1
        assert score.precision == 1.0
        assert score.recall == 1.0

    def test_wrong_path_is_fp(self):
        page = labeled(HTML, "html/body/table")
        score = score_pagelets([pagelet_at(page, "html/body/p")], [page])
        assert score.true_positives == 0
        assert score.precision == 0.0

    def test_overlap_tracked_separately(self):
        page = labeled(HTML, "html/body/table/tr")
        score = score_pagelets([pagelet_at(page, "html/body/table")], [page])
        assert score.true_positives == 0
        assert score.overlapping == 1

    def test_pagelet_on_goldless_page_is_fp(self):
        page = labeled(HTML, None)
        score = score_pagelets([pagelet_at(page, "html/body/table")], [page])
        assert score.precision == 0.0
        assert score.recall == 1.0  # no gold to recall

    def test_missed_gold_page_hurts_recall(self):
        covered = labeled(HTML, "html/body/table")
        missed = labeled(HTML, "html/body/table")
        score = score_pagelets(
            [pagelet_at(covered, "html/body/table")], [covered, missed]
        )
        assert score.recall == 0.5
        assert score.precision == 1.0

    def test_unknown_page_raises(self):
        inside = labeled(HTML, "html/body/table")
        outside = labeled(HTML, "html/body/table")
        with pytest.raises(EvaluationError):
            score_pagelets([pagelet_at(outside, "html/body/table")], [inside])

    def test_empty_inputs(self):
        score = score_pagelets([], [])
        assert score.precision == 1.0
        assert score.recall == 1.0


class TestScoreObjects:
    def make_part(self, object_paths, gold_paths):
        page = labeled(HTML, "html/body/table", gold_paths)
        pagelet = pagelet_at(page, "html/body/table")
        objects = tuple(
            QAObject(path, pagelet.node) for path in object_paths
        )
        return PartitionedPagelet(pagelet, objects)

    def test_exact_objects(self):
        part = self.make_part(
            ["html/body/table/tr"], ["html/body/table/tr"]
        )
        score = score_objects([part])
        assert score.precision == 1.0
        assert score.recall == 1.0

    def test_partial_objects(self):
        part = self.make_part(
            ["html/body/table/tr", "html/body/p"],
            ["html/body/table/tr", "html/body/table"],
        )
        score = score_objects([part])
        assert score.true_positives == 1
        assert score.identified == 2
        assert score.total_gold == 2

    def test_empty(self):
        assert score_objects([]).precision == 1.0
