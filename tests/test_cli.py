"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_probe_defaults(self):
        args = build_parser().parse_args(["probe"])
        assert args.domain == "ecommerce"
        assert args.seed == 0
        assert args.out == "pages.jsonl"

    def test_extract_requires_pages(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["extract"])

    def test_search_requires_query(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search"])

    def test_common_knobs(self):
        args = build_parser().parse_args(
            ["demo", "--seed", "9", "--k", "3", "--top-m", "1"]
        )
        assert args.seed == 9
        assert args.k == 3
        assert args.top_m == 1

    def test_backend_flag(self):
        args = build_parser().parse_args(["demo", "--backend", "python"])
        assert args.backend == "python"
        assert build_parser().parse_args(["extract", "--pages", "p",
                                          "--backend", "numpy"]).backend == "numpy"

    def test_backend_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--backend", "fortran"])

    def test_backend_threaded_into_config(self):
        from repro.cli import _thor_config

        args = build_parser().parse_args(["demo", "--backend", "python"])
        config = _thor_config(args)
        assert config.execution.backend == "python"
        # The deprecated per-stage fields stay untouched.
        assert config.clustering.backend is None
        assert config.subtrees.backend is None
        default = _thor_config(build_parser().parse_args(["demo"]))
        assert default.execution.backend is None
        assert default.execution.n_jobs == 1

    def test_jobs_flag(self):
        args = build_parser().parse_args(["demo", "--jobs", "2"])
        assert args.jobs == 2
        assert build_parser().parse_args(["search", "--query", "q",
                                          "--jobs", "0"]).jobs == 0

    def test_jobs_threaded_into_config(self):
        from repro.cli import _thor_config

        args = build_parser().parse_args(
            ["extract", "--pages", "p", "--jobs", "2", "--backend", "numpy"]
        )
        config = _thor_config(args)
        assert config.execution.n_jobs == 2
        assert config.execution.backend == "numpy"

    def test_probe_execution_and_report_flags(self):
        # Stage 1 is concurrency-aware: --jobs fans probes out, --rate
        # caps the per-site budget, --probe-report prints telemetry.
        args = build_parser().parse_args(
            ["probe", "--jobs", "4", "--rate", "50", "--probe-report"]
        )
        assert args.jobs == 4
        assert args.rate == 50.0
        assert args.probe_report is True
        assert build_parser().parse_args(["probe"]).probe_report is False

    def test_probe_rate_threaded_into_config(self):
        from repro.cli import _thor_config

        args = build_parser().parse_args(
            ["probe", "--jobs", "2", "--rate", "25"]
        )
        config = _thor_config(args)
        assert config.execution.n_jobs == 2
        assert config.probing.rate == 25.0

    def test_probe_fault_flags(self):
        args = build_parser().parse_args(
            ["probe", "--fault-error-rate", "0.3",
             "--fault-latency-ms", "5", "--fault-throttle-rate", "0.1"]
        )
        assert args.fault_error_rate == 0.3
        assert args.fault_latency_ms == 5.0
        assert args.fault_throttle_rate == 0.1


class TestCommands:
    def test_probe_then_extract(self, tmp_path, capsys):
        pages = tmp_path / "pages.jsonl"
        out = tmp_path / "result.json"
        assert main(
            ["probe", "--domain", "music", "--seed", "3",
             "--out", str(pages)]
        ) == 0
        assert pages.exists()
        assert main(
            ["extract", "--pages", str(pages), "--seed", "3",
             "--out", str(out)]
        ) == 0
        record = json.loads(out.read_text())
        assert record["pages"] == 110
        assert record["pagelets"]
        output = capsys.readouterr().out
        assert "QA-Pagelets" in output

    def test_probe_concurrent_with_report_and_faults(self, tmp_path, capsys):
        pages = tmp_path / "pages.jsonl"
        assert main(
            ["probe", "--domain", "music", "--seed", "3", "--jobs", "4",
             "--records", "40", "--fault-error-rate", "0.2",
             "--probe-report", "--out", str(pages)]
        ) == 0
        assert pages.exists()
        output = capsys.readouterr().out
        assert "Probe report" in output
        assert "concurrency: 4" in output

    def test_extract_empty_cache_fails(self, tmp_path, capsys):
        pages = tmp_path / "empty.jsonl"
        pages.write_text("")
        assert main(["extract", "--pages", str(pages)]) == 1

    def test_demo_prints_objects(self, capsys):
        assert main(["demo", "--domain", "jobs", "--seed", "5",
                     "--show", "1"]) == 0
        output = capsys.readouterr().out
        assert "pagelet=" in output

    def test_demo_backend_end_to_end(self, capsys):
        # Both backends drive the full pipeline from the CLI.
        assert main(["demo", "--domain", "jobs", "--seed", "5",
                     "--show", "1", "--backend", "python"]) == 0
        python_out = capsys.readouterr().out
        assert main(["demo", "--domain", "jobs", "--seed", "5",
                     "--show", "1", "--backend", "numpy"]) == 0
        numpy_out = capsys.readouterr().out
        assert "pagelet=" in python_out
        assert "pagelet=" in numpy_out

    def test_search_command(self, capsys):
        assert main(
            ["search", "--domains", "library", "--query", "history",
             "--seed", "6"]
        ) == 0
        output = capsys.readouterr().out
        assert "registered" in output
