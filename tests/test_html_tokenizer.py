"""Tests for the HTML tokenizer."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.html.tokenizer import (
    Comment,
    Doctype,
    EndTag,
    StartTag,
    Text,
    tokenize,
)


def toks(html):
    return list(tokenize(html))


class TestBasicTokens:
    def test_empty_input(self):
        assert toks("") == []

    def test_plain_text(self):
        assert toks("hello world") == [Text("hello world")]

    def test_simple_element(self):
        assert toks("<b>hi</b>") == [StartTag("b"), Text("hi"), EndTag("b")]

    def test_tag_names_lowercased(self):
        assert toks("<TABLE></Table>") == [StartTag("table"), EndTag("table")]

    def test_nested_elements(self):
        assert toks("<ul><li>x</li></ul>") == [
            StartTag("ul"),
            StartTag("li"),
            Text("x"),
            EndTag("li"),
            EndTag("ul"),
        ]

    def test_self_closing_tag(self):
        (tag,) = toks("<br/>")
        assert tag == StartTag("br", (), True)

    def test_self_closing_with_space(self):
        (tag,) = toks("<img src='a.png' />")
        assert tag.self_closing
        assert tag.get("src") == "a.png"

    def test_numeric_in_tag_name(self):
        assert toks("<h1>t</h1>")[0] == StartTag("h1")


class TestAttributes:
    def test_double_quoted(self):
        (tag,) = toks('<a href="x.html">')
        assert tag.get("href") == "x.html"

    def test_single_quoted(self):
        (tag,) = toks("<a href='x.html'>")
        assert tag.get("href") == "x.html"

    def test_unquoted(self):
        (tag,) = toks("<a href=x.html>")
        assert tag.get("href") == "x.html"

    def test_bare_attribute(self):
        (tag,) = toks("<input disabled>")
        assert tag.get("disabled") == ""

    def test_multiple_attributes(self):
        (tag,) = toks('<td colspan="2" align=center>')
        assert tag.get("colspan") == "2"
        assert tag.get("align") == "center"

    def test_attribute_names_lowercased(self):
        (tag,) = toks('<a HREF="x">')
        assert tag.get("href") == "x"
        assert tag.get("HREF") == "x"  # lookup is case-insensitive too

    def test_entities_decoded_in_values(self):
        (tag,) = toks('<a href="a&amp;b">')
        assert tag.get("href") == "a&b"

    def test_missing_attribute_returns_default(self):
        (tag,) = toks("<a>")
        assert tag.get("href") is None
        assert tag.get("href", "d") == "d"

    def test_unterminated_quote_consumes_rest(self):
        (tag,) = toks('<a href="unclosed')
        assert tag.get("href") == "unclosed"

    def test_value_with_spaces_in_quotes(self):
        (tag,) = toks('<a title="two words">')
        assert tag.get("title") == "two words"


class TestMalformedRecovery:
    def test_stray_lt_is_text(self):
        assert toks("a < b") == [Text("a < b")]

    def test_lt_followed_by_digit_is_text(self):
        assert toks("x <3 y") == [Text("x <3 y")]

    def test_unclosed_tag_at_eof(self):
        result = toks("<td")
        assert result == [StartTag("td")]

    def test_end_tag_without_name_dropped(self):
        assert toks("a</>b") == [Text("a"), Text("b")]

    def test_junk_between_attributes_skipped(self):
        (tag,) = toks('<a @ href="x">')
        assert tag.get("href") == "x"


class TestTextAndEntities:
    def test_entities_decoded(self):
        assert toks("a &amp; b") == [Text("a & b")]

    def test_numeric_entity(self):
        assert toks("&#65;") == [Text("A")]

    def test_text_between_tags(self):
        result = toks("<p>a</p>between<p>b</p>")
        assert Text("between") in result

    def test_whitespace_text_preserved_by_tokenizer(self):
        # (The parser drops whitespace-only nodes; the tokenizer must not.)
        assert toks("<b> </b>")[1] == Text(" ")


class TestSpecialConstructs:
    def test_comment(self):
        assert toks("<!-- note -->") == [Comment(" note ")]

    def test_unterminated_comment(self):
        assert toks("<!-- forever") == [Comment(" forever")]

    def test_doctype(self):
        (doc,) = toks("<!DOCTYPE html>")
        assert isinstance(doc, Doctype)
        assert doc.data == "html"

    def test_bogus_declaration_becomes_comment(self):
        (c,) = toks("<!foo>")
        assert isinstance(c, Comment)

    def test_cdata_becomes_text(self):
        assert toks("<![CDATA[x<y]]>") == [Text("x<y")]

    def test_processing_instruction_becomes_comment(self):
        (c,) = toks("<?xml version='1.0'?>")
        assert isinstance(c, Comment)

    def test_script_rawtext(self):
        result = toks("<script>if (a<b) {}</script>")
        assert result == [
            StartTag("script"),
            Text("if (a<b) {}"),
            EndTag("script"),
        ]

    def test_style_rawtext(self):
        result = toks("<style>a > b { }</style>")
        assert result[1] == Text("a > b { }")

    def test_unterminated_script(self):
        result = toks("<script>var x = 1;")
        assert result == [StartTag("script"), Text("var x = 1;")]

    def test_script_close_tag_case_insensitive(self):
        result = toks("<SCRIPT>x</SCRIPT>")
        assert result[-1] == EndTag("script")


class TestProperties:
    @given(st.text(max_size=300))
    def test_never_raises(self, html):
        list(tokenize(html))

    @given(st.text(alphabet="abc<>/='\" !-", max_size=200))
    def test_never_raises_markupish(self, html):
        list(tokenize(html))

    @given(st.text(alphabet=st.characters(blacklist_characters="<>&"), max_size=100))
    def test_plain_text_roundtrip(self, text):
        result = list(tokenize(text))
        if text:
            assert result == [Text(text)]
        else:
            assert result == []
