"""Tests for the execution layer's keyed vector-space cache."""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.config import ExecutionConfig
from repro.runtime import (
    cached_weighted_space,
    clear_space_cache,
    space_cache_stats,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_space_cache()
    yield
    clear_space_cache()


MAPS = [{"a": 2, "b": 1}, {"b": 3}, {"a": 1, "c": 4}]


class TestSpaceCache:
    def test_hit_on_identical_content(self):
        first = cached_weighted_space(MAPS)
        # A *different* list object with equal content still hits: the
        # key is the collection content, not identity.
        second = cached_weighted_space([dict(m) for m in MAPS])
        assert second is first
        stats = space_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_miss_on_different_weighting(self):
        tfidf = cached_weighted_space(MAPS, "tfidf")
        raw = cached_weighted_space(MAPS, "raw")
        assert raw is not tfidf
        assert space_cache_stats()["misses"] == 2

    def test_miss_on_different_content(self):
        first = cached_weighted_space(MAPS)
        other = cached_weighted_space(MAPS + [{"d": 1}])
        assert other is not first

    def test_cached_space_matches_fresh_build(self):
        from repro.vsm.matrix import weighted_space

        cached = cached_weighted_space(MAPS)
        fresh = weighted_space(MAPS)
        assert np.array_equal(cached.matrix, fresh.matrix)
        assert cached.vocabulary == fresh.vocabulary

    def test_cache_off_policy_bypasses(self):
        off = ExecutionConfig(cache="off")
        first = cached_weighted_space(MAPS, execution=off)
        second = cached_weighted_space(MAPS, execution=off)
        assert second is not first
        stats = space_cache_stats()
        assert stats["hits"] == 0 and stats["size"] == 0

    def test_lru_eviction_bounds_size(self):
        from repro import runtime

        for i in range(runtime._SPACE_CACHE_LIMIT + 5):
            cached_weighted_space([{f"f{i}": 1}])
        assert space_cache_stats()["size"] == runtime._SPACE_CACHE_LIMIT

    def test_registry_reuses_space_across_k_sweep(self):
        from repro.deepweb import make_site
        from repro.signatures.registry import get_configuration

        site = make_site(domain="ecommerce", seed=3, records=20)
        pages = [site.query(w) for w in ("alpha", "beta", "gamma", "delta")]
        config = get_configuration("ttag")
        for k in (2, 3, 4):
            config(pages, k, restarts=1, seed=0, backend="numpy")
        stats = space_cache_stats()
        # One interning for the collection, hits for every further k.
        assert stats["misses"] == 1
        assert stats["hits"] == 2
