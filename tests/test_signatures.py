"""Tests for page signatures and the clustering-configuration registry."""

from __future__ import annotations

import math

import pytest

from repro.core.page import Page
from repro.signatures import (
    CONFIGURATIONS,
    content_signature,
    content_vectors,
    get_configuration,
    size_signature,
    tag_signature,
    tag_vectors,
    url_distance,
)

PAGES = [
    Page("<html><body><table><tr><td>alpha beta</td></tr></table></body></html>",
         url="http://s.com/search?q=alpha"),
    Page("<html><body><p>no matches found</p></body></html>",
         url="http://s.com/search?q=zzz"),
    Page("<html><body><table><tr><td>alpha gamma</td><td>x</td></tr></table></body></html>",
         url="http://s.com/search?q=gamma"),
]


class TestTagSignature:
    def test_counts(self):
        sig = tag_signature(PAGES[0])
        assert sig["td"] == 1
        assert sig["html"] == 1

    def test_raw_vectors_normalized(self):
        vectors = tag_vectors(PAGES, "raw")
        assert all(math.isclose(v.norm, 1.0) for v in vectors)

    def test_tfidf_vectors_weight_discriminative_tags(self):
        vectors = tag_vectors(PAGES, "tfidf")
        # <p> occurs only in the no-match page: it should carry more
        # weight there than ubiquitous <html>.
        v = vectors[1]
        assert v["p"] > v["html"]

    def test_unknown_weighting_raises(self):
        with pytest.raises(ValueError):
            tag_vectors(PAGES, "bogus")


class TestContentSignature:
    def test_terms_stemmed(self):
        page = Page("<html><body>connected connections</body></html>")
        sig = content_signature(page)
        assert sig == {"connect": 2}

    def test_vectors(self):
        vectors = content_vectors(PAGES, "tfidf")
        assert len(vectors) == 3
        assert "alpha" in vectors[0]

    def test_unknown_weighting_raises(self):
        with pytest.raises(ValueError):
            content_vectors(PAGES, "x")


class TestUrlAndSize:
    def test_url_distance_normalized(self):
        d = url_distance(PAGES[0], PAGES[1])
        assert 0.0 < d < 1.0

    def test_url_distance_raw(self):
        d = url_distance(PAGES[0], PAGES[1], normalized=False)
        assert d >= 3.0

    def test_url_distance_identical(self):
        assert url_distance(PAGES[0], PAGES[0]) == 0.0

    def test_size_signature(self):
        assert size_signature(PAGES[0]) == float(len(PAGES[0].html))


class TestRegistry:
    def test_seven_configurations(self):
        assert set(CONFIGURATIONS) == {
            "ttag", "rtag", "tcon", "rcon", "size", "url", "rand"
        }

    @pytest.mark.parametrize("key", sorted(CONFIGURATIONS))
    def test_each_config_clusters(self, key):
        config = get_configuration(key)
        clustering = config(PAGES, 2, restarts=2, seed=0)
        assert clustering.n == 3
        assert clustering.k == 2

    def test_unknown_key_raises_with_hint(self):
        with pytest.raises(KeyError, match="ttag"):
            get_configuration("nope")

    def test_deterministic_given_seed(self):
        config = get_configuration("ttag")
        a = config(PAGES, 2, restarts=2, seed=5)
        b = config(PAGES, 2, restarts=2, seed=5)
        assert a.labels == b.labels
