"""Dedicated tests for ``repro.discovery`` (ISSUE-8 satellite).

Link-extraction units (relative resolution against the page base,
fragment/pseudo-link skipping), :class:`BreadthFirstCrawler` behavior
over hand-built and simulated sites, :class:`DiscoveredForm`
provenance, and a hypothesis property that same-seed simulated webs
produce byte-identical crawl orders.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.discovery.crawler import BreadthFirstCrawler, _extract_links
from repro.discovery.web import SimulatedWeb
from repro.html.parser import parse


def links_of(html, base=None):
    return _extract_links(parse(html).root, base_url=base)


class TestExtractLinks:
    def test_relative_resolved_against_base(self):
        html = '<a href="page/2">next</a><a href="/top">top</a>'
        assert links_of(html, base="http://x.org/dir/index") == [
            "http://x.org/dir/page/2",
            "http://x.org/top",
        ]

    def test_absolute_pass_through_canonicalized(self):
        html = '<a href="HTTP://X.org:80/a#frag">a</a>'
        assert links_of(html) == ["http://x.org/a"]

    def test_fragment_only_and_pseudo_links_dropped(self):
        html = (
            '<a href="#section">s</a>'
            '<a href="javascript:void(0)">j</a>'
            '<a href="mailto:a@b.org">m</a>'
            '<a href="real">r</a>'
            "<a>no href</a>"
        )
        assert links_of(html, base="http://x.org/") == ["http://x.org/real"]

    def test_relative_without_base_dropped(self):
        assert links_of('<a href="page/2">x</a>') == []

    def test_document_order_preserved(self):
        html = '<a href="/b">b</a><div><a href="/a">a</a></div>'
        assert links_of(html, base="http://x.org/") == [
            "http://x.org/b",
            "http://x.org/a",
        ]


class TinySite:
    """A hand-built site with relative links and one search form."""

    pages = {
        "http://tiny.org/": (
            '<a href="a">a</a><a href="sub/b">b</a>'
            '<a href="#frag">skip</a><a href="javascript:x()">skip</a>'
        ),
        "http://tiny.org/a": (
            '<form action="/search" method="get">'
            '<input type="text" name="q"/></form>'
            '<a href="/">home</a>'
        ),
        "http://tiny.org/sub/b": '<a href="../a">up</a><a href="c">c</a>',
        "http://tiny.org/sub/c": "<p>leaf</p>",
    }

    def fetch(self, url):
        return self.pages[url]


class TestBreadthFirstCrawler:
    def test_follows_relative_links(self):
        report = BreadthFirstCrawler(TinySite().fetch, max_pages=10).crawl(
            ["http://tiny.org/"]
        )
        assert report.visited == (
            "http://tiny.org/",
            "http://tiny.org/a",
            "http://tiny.org/sub/b",
            "http://tiny.org/sub/c",
        )
        assert report.frontier_exhausted
        assert report.pages_failed == 0

    def test_form_provenance(self):
        report = BreadthFirstCrawler(TinySite().fetch, max_pages=10).crawl(
            ["http://tiny.org/"]
        )
        assert len(report.forms) == 1
        discovered = report.forms[0]
        assert discovered.form.action == "/search"
        assert discovered.found_on == "http://tiny.org/a"
        assert discovered.depth == 1
        assert report.unique_actions == ["/search"]

    def test_page_budget_honored(self):
        report = BreadthFirstCrawler(TinySite().fetch, max_pages=2).crawl(
            ["http://tiny.org/"]
        )
        assert report.pages_fetched == 2
        assert not report.frontier_exhausted

    def test_dead_links_counted_not_fatal(self):
        site = TinySite()

        def fetch(url):
            if url.endswith("/a"):
                raise KeyError(url)
            return site.fetch(url)

        report = BreadthFirstCrawler(fetch, max_pages=10).crawl(
            ["http://tiny.org/"]
        )
        assert report.pages_failed == 1
        assert "http://tiny.org/a" not in report.visited
        assert report.pages_fetched == 3

    def test_simulated_web_discovers_all_portals(self):
        source = SimulatedWeb(n_pages=30, n_portals=4, seed=9)
        report = BreadthFirstCrawler(source.fetch, max_pages=500).crawl(
            [source.seed_url]
        )
        assert len(report.forms) == 4
        assert len(set(report.unique_actions)) == 4


class TestSeedDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16), n_pages=st.integers(5, 40))
    def test_same_seed_same_crawl_order(self, seed, n_pages):
        def trace():
            source = SimulatedWeb(n_pages=n_pages, n_portals=2, seed=seed)
            report = BreadthFirstCrawler(source.fetch, max_pages=500).crawl(
                [source.seed_url]
            )
            return report.visited, tuple(report.unique_actions)

        assert trace() == trace()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_different_seeds_differ(self, seed):
        def html_of(s):
            return SimulatedWeb(n_pages=10, n_portals=1, seed=s).fetch(
                SimulatedWeb(n_pages=10, n_portals=1, seed=s).seed_url
            )

        # Not a strict inequality for every pair, but the page body must
        # at least mention its own seed-derived host.
        assert f"web{seed}.example.org" in html_of(seed)
