"""Tests for the tag-tree model and its metrics."""

from __future__ import annotations

import pytest

from repro.html import parse
from repro.html.metrics import distinct_tags, max_fanout, subtree_shape
from repro.html.tree import ContentNode, TagNode, TagTree

SAMPLE = (
    "<html><head><title>T</title></head>"
    "<body><table><tr><td>a</td><td>b</td></tr>"
    "<tr><td>c</td></tr></table><p>text</p></body></html>"
)


@pytest.fixture
def tree():
    return parse(SAMPLE)


class TestNodeBasics:
    def test_depth_of_root(self, tree):
        assert tree.root.depth() == 0

    def test_depth_of_nested(self, tree):
        td = tree.root.find("td")
        assert td.depth() == 4  # html(0)/body(1)/table(2)/tr(3)/td(4)

    def test_ancestors_order(self, tree):
        td = tree.root.find("td")
        tags = [a.tag for a in td.ancestors()]
        assert tags == ["tr", "table", "body", "html"]

    def test_root_method(self, tree):
        td = tree.root.find("td")
        assert td.root() is tree.root

    def test_is_tag_is_content(self, tree):
        td = tree.root.find("td")
        assert td.is_tag and not td.is_content
        leaf = td.children[0]
        assert leaf.is_content and not leaf.is_tag

    def test_content_node_repr_truncates(self):
        node = ContentNode("x" * 100)
        assert len(repr(node)) < 60


class TestTagNodeAccessors:
    def test_append_sets_parent(self):
        parent = TagNode("div")
        child = TagNode("span")
        parent.append(child)
        assert child.parent is parent
        assert parent.children == [child]

    def test_get_attribute(self):
        node = TagNode("a", (("href", "x"),))
        assert node.get("href") == "x"
        assert node.get("HREF") == "x"
        assert node.get("missing") is None

    def test_tag_children_vs_content_children(self, tree):
        tr = tree.root.find("tr")
        assert [c.tag for c in tr.tag_children()] == ["td", "td"]
        td = tree.root.find("td")
        assert [c.text for c in td.content_children()] == ["a"]

    def test_fanout(self, tree):
        table = tree.root.find("table")
        assert table.fanout == 2  # two rows
        assert tree.root.find("td").fanout == 1  # one text leaf

    def test_find_returns_first(self, tree):
        assert tree.root.find("td").text() == "a"

    def test_find_all_in_document_order(self, tree):
        texts = [td.text() for td in tree.root.find_all("td")]
        assert texts == ["a", "b", "c"]

    def test_find_missing(self, tree):
        assert tree.root.find("video") is None
        assert tree.root.find_all("video") == []


class TestTraversal:
    def test_iter_preorder(self, tree):
        tags = [n.tag for n in tree.root.iter_tags()]
        assert tags[0] == "html"
        assert tags.index("head") < tags.index("body")
        assert tags.index("table") < tags.index("p")

    def test_iter_content(self, tree):
        texts = [c.text for c in tree.root.iter_content()]
        assert texts == ["T", "a", "b", "c", "text"]

    def test_text_concatenation(self, tree):
        assert tree.root.find("table").text(" ") == "a b c"

    def test_text_custom_separator(self, tree):
        assert tree.root.find("tr").text("|") == "a|b"

    def test_size_counts_all_nodes(self):
        t = parse("<html><body><p>x</p></body></html>")
        # html, body, p, text
        assert t.root.size() == 4

    def test_subtree_depth(self, tree):
        table = tree.root.find("table")
        assert table.subtree_depth() == 3  # table > tr > td > text


class TestTagTree:
    def test_tag_counts(self, tree):
        counts = tree.tag_counts()
        assert counts["td"] == 3
        assert counts["tr"] == 2
        assert counts["html"] == 1
        assert "#text" not in counts

    def test_tree_size_delegates(self, tree):
        assert tree.size() == tree.root.size()

    def test_tree_text_delegates(self, tree):
        assert "text" in tree.text()

    def test_repr(self, tree):
        assert "TagTree" in repr(tree)


class TestMetrics:
    def test_max_fanout(self, tree):
        # body has 2 children; tr[1] has 2 tds; table has 2 rows;
        # html has 2. Max fanout in this doc is 2.
        assert max_fanout(tree) == 2

    def test_max_fanout_wide(self):
        t = parse("<ul>" + "<li>x</li>" * 9 + "</ul>")
        assert max_fanout(t) == 9

    def test_distinct_tags(self, tree):
        assert distinct_tags(tree) == len(tree.tag_counts())

    def test_subtree_shape(self, tree):
        table = tree.root.find("table")
        shape = subtree_shape(table)
        assert shape.path == "html/body/table"
        assert shape.fanout == 2
        assert shape.depth == 2
        assert shape.nodes == table.size()

    def test_subtree_shape_leaf_tag(self, tree):
        td = tree.root.find("td")
        shape = subtree_shape(td)
        assert shape.fanout == 1
        assert shape.nodes == 2  # td + its text leaf
