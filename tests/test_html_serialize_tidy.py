"""Tests for serialization, tidy, and entity handling."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.html import parse, tidy, to_html
from repro.html.entities import decode_entities, encode_attribute, encode_entities
from repro.html.tree import TagNode


class TestEntities:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("a &amp; b", "a & b"),
            ("&lt;tag&gt;", "<tag>"),
            ("&quot;q&quot;", '"q"'),
            ("&#65;&#66;", "AB"),
            ("&#x41;", "A"),
            ("&copy; 2003", "© 2003"),
            ("&nbsp;", "\xa0"),
        ],
    )
    def test_decode(self, raw, expected):
        assert decode_entities(raw) == expected

    def test_unknown_entity_left_alone(self):
        assert decode_entities("&bogus;") == "&bogus;"

    def test_unterminated_reference_left_alone(self):
        assert decode_entities("R&D department") == "R&D department"

    def test_bad_numeric_left_alone(self):
        assert decode_entities("&#xFFFFFFFF;") == "&#xFFFFFFFF;"
        assert decode_entities("&#;") == "&#;"

    def test_no_ampersand_fast_path(self):
        text = "plain text"
        assert decode_entities(text) is text

    def test_encode_text(self):
        assert encode_entities("a<b&c>d") == "a&lt;b&amp;c&gt;d"

    def test_encode_attribute_quotes(self):
        assert encode_attribute('say "hi"') == "say &quot;hi&quot;"

    @given(st.text(max_size=200))
    def test_encode_decode_roundtrip(self, text):
        assert decode_entities(encode_entities(text)) == text

    @given(st.text(max_size=200))
    def test_decode_never_raises(self, text):
        decode_entities(text)


class TestSerialize:
    def test_simple(self):
        assert to_html(parse("<p>x</p>").root) == "<html><p>x</p></html>"

    def test_attributes_serialized(self):
        html = to_html(parse('<a href="x.html" rel="next">l</a>').root)
        assert 'href="x.html"' in html
        assert 'rel="next"' in html

    def test_bare_attribute(self):
        html = to_html(parse("<input disabled>").root)
        assert "<input disabled>" in html

    def test_void_element_no_close_tag(self):
        html = to_html(parse("<p>a<br>b</p>").root)
        assert "<br>" in html
        assert "</br>" not in html

    def test_text_re_escaped(self):
        html = to_html(parse("<p>a &amp; b</p>").root)
        assert "a &amp; b" in html

    def test_pretty_indents(self):
        pretty = to_html(parse("<div><p>x</p></div>"), pretty=True)
        lines = pretty.splitlines()
        assert any(line.startswith("  ") for line in lines)

    def test_accepts_tree_or_node(self):
        tree = parse("<p>x</p>")
        assert to_html(tree) == to_html(tree.root)

    def test_empty_element_compact(self):
        assert "<div></div>" in to_html(parse("<div></div>").root)


class TestTidy:
    def test_implicit_closes_made_explicit(self):
        assert tidy("<BODY><P>one<P>two") == (
            "<html><body><p>one</p><p>two</p></body></html>"
        )

    def test_case_folding(self):
        assert "<table>" in tidy("<TABLE></TABLE>")

    def test_comments_removed(self):
        assert "hidden" not in tidy("<p><!-- hidden -->x</p>")

    def test_doctype_removed(self):
        assert "DOCTYPE" not in tidy("<!DOCTYPE html><html><body></body></html>")

    def test_idempotent_on_messy_input(self):
        messy = "<TABLE><TR><TD>a<TD>b<TR><TD>c"
        once = tidy(messy)
        assert tidy(once) == once

    @given(st.text(alphabet="<>/abtdr il", max_size=150))
    def test_idempotent_property(self, html):
        once = tidy(html)
        assert tidy(once) == once
