"""Property-based tests for the searchable database substrate."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.deepweb.database import SearchableDatabase
from repro.deepweb.records import Record
from repro.text.tokenize import tokenize_words

words = st.text(alphabet="abcdefg", min_size=1, max_size=5)
field_values = st.lists(words, min_size=1, max_size=6).map(" ".join)
record_lists = st.lists(
    st.fixed_dictionaries({"title": field_values, "blurb": field_values}),
    min_size=1,
    max_size=10,
)


def build_db(field_maps):
    return SearchableDatabase(
        [Record(i, fields) for i, fields in enumerate(field_maps)]
    )


class TestDatabaseProperties:
    @given(record_lists, words)
    def test_results_actually_contain_the_word(self, field_maps, word):
        db = build_db(field_maps)
        for record in db.query(word):
            assert word in tokenize_words(record.searchable_text())

    @given(record_lists)
    def test_every_indexed_word_retrieves_its_record(self, field_maps):
        db = build_db(field_maps)
        for record in db.records:
            for word in tokenize_words(record.searchable_text()):
                hits = db.query(word)
                assert record in hits

    @given(record_lists, words, words)
    def test_conjunctive_query_narrows(self, field_maps, w1, w2):
        db = build_db(field_maps)
        both = {r.record_id for r in db.query(f"{w1} {w2}")}
        only_first = {r.record_id for r in db.query(w1)}
        only_second = {r.record_id for r in db.query(w2)}
        assert both == only_first & only_second

    @given(record_lists, words)
    def test_match_count_consistent(self, field_maps, word):
        db = build_db(field_maps)
        assert db.match_count(word) == len(db.query(word))

    @given(record_lists)
    def test_results_in_insertion_order(self, field_maps):
        db = build_db(field_maps)
        for word in list(db.vocabulary())[:10]:
            ids = [r.record_id for r in db.query(word)]
            assert ids == sorted(ids)

    @given(record_lists)
    def test_histogram_counts_vocabulary(self, field_maps):
        db = build_db(field_maps)
        histogram = db.selectivity_histogram()
        assert sum(histogram.values()) == len(db.vocabulary())
        assert all(1 <= count <= len(db.records) for count in histogram)
