"""Tests for the persistent content-addressed artifact store."""

from __future__ import annotations

import json
import os

import pytest

from repro.artifacts import (
    ArtifactStore,
    KIND_MODELS,
    KIND_RECORDS,
    KIND_SPACES,
    KIND_TREES,
    artifact_report,
    cached_signature,
    cached_tree,
    candidate_records_key,
    collect,
    format_artifact_report,
    load_persistent_stats,
    merge_persistent_stats,
    page_signature_key,
    page_tree_key,
    payload_to_tree,
    put_signature,
    put_tree,
    space_key,
    store_usage,
    tree_to_payload,
)
from repro.artifacts.gc import iter_entries
from repro.config import ExecutionConfig, resolve_cache_dir
from repro.html.parser import parse


HTML = "<html><body><div id='a'>hello <b>world</b></div><p>x</p></body></html>"


class TestKeys:
    def test_keys_are_deterministic(self):
        assert page_tree_key(HTML) == page_tree_key(HTML)
        assert page_signature_key(HTML) == page_signature_key(HTML)

    def test_keys_differ_by_content(self):
        assert page_tree_key(HTML) != page_tree_key(HTML + " ")

    def test_kinds_of_one_page_get_distinct_keys(self):
        keys = {
            page_tree_key(HTML),
            page_signature_key(HTML),
            candidate_records_key(HTML, False),
        }
        assert len(keys) == 3

    def test_records_key_folds_in_parameters(self):
        assert candidate_records_key(HTML, True) != candidate_records_key(
            HTML, False
        )

    def test_space_key_is_iteration_order_sensitive(self):
        # Column order of the vocabulary is load-bearing for the
        # bitwise invariant: two collections with equal *sorted*
        # content but different insertion order are different spaces.
        a = space_key([{"x": 1, "y": 2}], "tfidf")
        b = space_key([{"y": 2, "x": 1}], "tfidf")
        assert a != b
        assert space_key([{"x": 1}], "tfidf") != space_key([{"x": 1}], "raw")


class TestStore:
    def test_json_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        value = {"b": 2, "a": [1, "x", None]}
        store.put_json(KIND_RECORDS, "ab" * 32, value)
        loaded = store.get_json(KIND_RECORDS, "ab" * 32)
        assert loaded == value
        # JSON preserves dict insertion order.
        assert list(loaded) == ["b", "a"]
        assert store.stats() == {
            "hits": 1, "misses": 0, "puts": 1,
            "bytes_written": store.stats()["bytes_written"],
        }

    def test_missing_key_is_counted_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get_json(KIND_RECORDS, "00" * 32) is None
        assert store.stats()["misses"] == 1

    def test_corrupt_file_is_counted_miss_and_repairable(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "cd" * 32
        store.put_json(KIND_RECORDS, key, [1, 2])
        path = store._path(KIND_RECORDS, key, "json")
        with open(path, "wb") as handle:
            handle.write(b"{truncated")
        assert store.get_json(KIND_RECORDS, key) is None
        assert store.stats()["misses"] == 1
        store.put_json(KIND_RECORDS, key, [1, 2])
        assert store.get_json(KIND_RECORDS, key) == [1, 2]

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_json(KIND_RECORDS, "ef" * 32, {"k": 1})
        leftovers = [
            name
            for _, _, files in os.walk(tmp_path)
            for name in files
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_array_round_trip_is_bitwise(self, tmp_path):
        np = pytest.importorskip("numpy")
        store = ArtifactStore(tmp_path)
        matrix = np.array([[0.1, 0.2], [1.0 / 3.0, 7e-300]])
        norms = np.array([1.0, 0.999999999999])
        store.put_arrays(
            KIND_SPACES, "12" * 32, {"matrix": matrix, "norms": norms},
            meta={"features": ["a", "b"]},
        )
        bundle = store.get_arrays(KIND_SPACES, "12" * 32)
        assert bundle["meta"] == {"features": ["a", "b"]}
        assert np.array_equal(bundle["matrix"], matrix)
        assert np.array_equal(bundle["norms"], norms)

    def test_stats_ledger_accumulates_across_flushes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_json(KIND_RECORDS, "aa" * 32, 1)
        store.get_json(KIND_RECORDS, "aa" * 32)
        store.flush_stats()
        assert store.stats()["puts"] == 0  # folded into the ledger
        other = ArtifactStore(tmp_path)  # a second process
        other.get_json(KIND_RECORDS, "no" * 32)
        other.flush_stats()
        ledger = load_persistent_stats(tmp_path)
        assert ledger["puts"] == 1
        assert ledger["hits"] == 1
        assert ledger["misses"] == 1

    def test_merge_persistent_stats_survives_corrupt_ledger(self, tmp_path):
        (tmp_path / "stats.json").write_text("not json")
        totals = merge_persistent_stats(tmp_path, {"hits": 2})
        assert totals == {"hits": 2}


class TestTreeCodec:
    def test_round_trip_is_lossless(self):
        tree = parse(HTML)
        rebuilt = payload_to_tree(tree_to_payload(tree))
        # Equal payloads == equal node structure (tags, attrs, text,
        # order) — the codec is its own witness.
        assert tree_to_payload(rebuilt) == tree_to_payload(tree)

    def test_cached_tree_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert cached_tree(store, HTML) is None
        put_tree(store, HTML, parse(HTML))
        tree = cached_tree(store, HTML, url="http://x/")
        assert tree is not None
        assert tree.url == "http://x/"
        assert tree_to_payload(tree) == tree_to_payload(parse(HTML))

    def test_string_root_payload_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_json(KIND_TREES, page_tree_key(HTML), "just text")
        assert cached_tree(store, HTML) is None


class TestSignatures:
    def test_round_trip_preserves_count_order(self, tmp_path):
        store = ArtifactStore(tmp_path)
        put_signature(
            store, HTML,
            tag_counts={"div": 2, "b": 1},
            term_counts={"world": 1, "hello": 1},
            max_fanout=3,
        )
        bundle = cached_signature(store, HTML)
        assert list(bundle["term_counts"]) == ["world", "hello"]
        assert bundle["max_fanout"] == 3

    def test_incomplete_bundle_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_json(
            KIND_RECORDS, page_signature_key(HTML), {"tag_counts": {}}
        )
        assert cached_signature(store, HTML) is None


class TestGc:
    def _fill(self, tmp_path, n=6):
        store = ArtifactStore(tmp_path)
        for i in range(n):
            store.put_json(KIND_RECORDS, f"{i:02d}" * 32, {"i": i, "pad": "x" * 64})
        store.flush_stats()
        return store

    def test_pure_scan_removes_nothing(self, tmp_path):
        self._fill(tmp_path)
        report = collect(tmp_path)
        assert report.removed_entries == 0
        assert report.scanned_entries == 6

    def test_byte_budget_evicts_oldest_first(self, tmp_path):
        self._fill(tmp_path)
        entries = sorted(iter_entries(tmp_path), key=lambda e: (e[2], e[0]))
        per_entry = entries[0][1]
        report = collect(tmp_path, max_bytes=3 * per_entry)
        assert report.removed_entries == 3
        survivors = {path for path, _, _ in iter_entries(tmp_path)}
        # The oldest three are the ones gone.
        assert all(e[0] not in survivors for e in entries[:3])
        assert report.kept_bytes <= 3 * per_entry

    def test_age_limit_evicts_expired(self, tmp_path):
        self._fill(tmp_path)
        stale = sorted(iter_entries(tmp_path))[0][0]
        os.utime(stale, (1, 1))
        report = collect(tmp_path, max_age_s=3600)
        assert report.removed_entries == 1
        assert not os.path.exists(stale)

    def test_stats_ledger_never_evicted(self, tmp_path):
        self._fill(tmp_path)
        paths = [path for path, _, _ in iter_entries(tmp_path)]
        assert all(not p.endswith("stats.json") for p in paths)
        collect(tmp_path, max_bytes=0)
        assert os.path.exists(tmp_path / "stats.json")
        assert list(iter_entries(tmp_path)) == []

    def test_models_evicted_only_after_other_kinds(self, tmp_path):
        store = self._fill(tmp_path)
        store.put_json(KIND_MODELS, "ab" * 32, {"pad": "x" * 64})
        entries = {
            path: size for path, size, _ in iter_entries(tmp_path)
        }
        model_path = next(
            path
            for path in entries
            if os.path.relpath(path, tmp_path).split(os.sep)[0] == "models"
        )
        os.utime(model_path, (1, 1))  # make the model the oldest entry
        record_size = max(
            size for path, size in entries.items() if path != model_path
        )
        collect(tmp_path, max_bytes=entries[model_path] + record_size)
        # Oldest entry in the store, yet it outlives every evicted
        # record: the byte budget drains non-model kinds first.
        assert os.path.exists(model_path)
        survivors = {path for path, _, _ in iter_entries(tmp_path)}
        assert len(survivors) == 2  # the model + the newest record
        # With everything else gone, models are fair game.
        collect(tmp_path, max_bytes=0)
        assert not os.path.exists(model_path)

    def test_age_expiry_still_reaps_models(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_json(KIND_MODELS, "ab" * 32, {"pad": "x" * 64})
        model_path = next(path for path, _, _ in iter_entries(tmp_path))
        os.utime(model_path, (1, 1))
        report = collect(tmp_path, max_age_s=3600)
        assert report.removed_entries == 1
        assert not os.path.exists(model_path)

    def test_usage_report_accounts_models_kind(self, tmp_path):
        store = self._fill(tmp_path)
        store.put_json(KIND_MODELS, "ab" * 32, {"pad": "x" * 64})
        text = format_artifact_report(artifact_report(tmp_path))
        assert "models: 1 entries" in text

    def test_usage_report_breaks_down_by_kind(self, tmp_path):
        store = self._fill(tmp_path)
        put_tree(store, HTML, parse(HTML))
        usage = store_usage(tmp_path)
        assert usage["entries"] == 7
        report = artifact_report(tmp_path)
        text = format_artifact_report(report)
        assert "records: 6 entries" in text
        assert "trees: 1 entries" in text
        assert "lifetime:" in text


class TestResolveCacheDir:
    def test_explicit_dir_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/elsewhere")
        execution = ExecutionConfig(cache_dir=str(tmp_path))
        assert resolve_cache_dir(execution) == str(tmp_path)

    def test_env_var_fills_in(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert resolve_cache_dir(ExecutionConfig()) == str(tmp_path)
        assert resolve_cache_dir(None) == str(tmp_path)

    def test_unset_means_no_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache_dir(ExecutionConfig()) is None

    def test_artifact_cache_off_disables_everything(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        execution = ExecutionConfig(
            cache_dir=str(tmp_path), artifact_cache="off"
        )
        assert resolve_cache_dir(execution) is None


class TestStoreRegistry:
    @pytest.fixture(autouse=True)
    def fresh_registry(self):
        from repro.runtime import clear_artifact_store_registry

        clear_artifact_store_registry()
        yield
        clear_artifact_store_registry()

    def test_memoized_per_root(self, tmp_path):
        from repro.runtime import artifact_store_for

        execution = ExecutionConfig(cache_dir=str(tmp_path))
        first = artifact_store_for(execution)
        second = artifact_store_for(ExecutionConfig(cache_dir=str(tmp_path)))
        assert first is second
        assert first.root == str(tmp_path)

    def test_none_without_configuration(self, monkeypatch):
        from repro.runtime import artifact_store_for

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert artifact_store_for(None) is None
        assert artifact_store_for(ExecutionConfig()) is None


class TestPersistentSpaceCache:
    @pytest.fixture(autouse=True)
    def fresh_caches(self):
        from repro.runtime import (
            clear_artifact_store_registry,
            clear_space_cache,
        )

        clear_space_cache()
        clear_artifact_store_registry()
        yield
        clear_space_cache()
        clear_artifact_store_registry()

    def test_disk_hit_is_bitwise_identical(self, tmp_path):
        np = pytest.importorskip("numpy")
        from repro.runtime import (
            artifact_store_for,
            cached_weighted_space,
            clear_space_cache,
        )
        from repro.vsm.matrix import weighted_space

        maps = [{"a": 2, "b": 1}, {"b": 3, "c": 1}, {"a": 1}]
        execution = ExecutionConfig(cache_dir=str(tmp_path))
        built = cached_weighted_space(maps, "tfidf", execution)
        clear_space_cache()  # force the in-memory miss
        loaded = cached_weighted_space(maps, "tfidf", execution)
        assert loaded is not built
        assert np.array_equal(loaded.matrix, built.matrix)
        assert np.array_equal(loaded.norms, built.norms)
        assert loaded.vocabulary == built.vocabulary
        fresh = weighted_space(maps, "tfidf")
        assert np.array_equal(loaded.matrix, fresh.matrix)
        store = artifact_store_for(execution)
        assert store.stats()["hits"] >= 1

    def test_corrupt_space_artifact_falls_back_to_build(self, tmp_path):
        np = pytest.importorskip("numpy")
        from repro.artifacts.keys import space_key as persistent_space_key
        from repro.runtime import (
            artifact_store_for,
            cached_weighted_space,
            clear_space_cache,
        )

        maps = [{"a": 1, "b": 2}]
        execution = ExecutionConfig(cache_dir=str(tmp_path))
        built = cached_weighted_space(maps, "tfidf", execution)
        store = artifact_store_for(execution)
        path = store._path(
            KIND_SPACES, persistent_space_key(maps, "tfidf"), "npz"
        )
        with open(path, "wb") as handle:
            handle.write(b"not an npz")
        clear_space_cache()
        rebuilt = cached_weighted_space(maps, "tfidf", execution)
        assert np.array_equal(rebuilt.matrix, built.matrix)
