"""Smoke tests for the stable ``repro.api`` facade."""

from __future__ import annotations

import pytest

from repro import api


#: The facade's stability promise, verbatim. A diff here is an API
#: change and belongs in CHANGES.md — the test failing is the point.
EXPECTED_ALL = [
    "ArtifactStore",
    "ChunkFailedError",
    "ClusteringConfig",
    "ConfigError",
    "CrawlConfig",
    "CrawlReport",
    "DEFAULT_CONFIG",
    "DeepWebSource",
    "ExecutionConfig",
    "FaultInjectingSource",
    "FaultPlan",
    "FaultSpec",
    "FleetConfig",
    "FleetReport",
    "FleetSpec",
    "GcReport",
    "HttpFetcher",
    "IncrementalConfig",
    "Page",
    "ProbeConfig",
    "ProbeResult",
    "ProbeTelemetry",
    "QuarantineRecord",
    "ResilienceError",
    "ResumeError",
    "RunOptions",
    "RunReport",
    "SiteOutcome",
    "SiteSpec",
    "StageTimeoutError",
    "StageTimeouts",
    "SubtreeConfig",
    "Thor",
    "ThorConfig",
    "ThorError",
    "ThorResult",
    "TransportConfig",
    "collect_artifacts",
    "crawl",
    "extract",
    "format_artifact_report",
    "format_crawl_report",
    "format_fleet_report",
    "format_probe_report",
    "format_run_report",
    "make_site",
    "probe",
    "refresh_corpus",
    "resolve_cache_dir",
    "run",
    "run_fleet",
]


class TestFacadeSurface:
    def test_exports(self):
        for name in api.__all__:
            assert hasattr(api, name), name

    def test_exact_surface(self):
        assert api.__all__ == EXPECTED_ALL

    def test_surface_is_sorted(self):
        assert api.__all__ == sorted(api.__all__)

    def test_reexports_are_canonical(self):
        from repro.config import ExecutionConfig, ThorConfig
        from repro.core.thor import Thor, ThorResult

        assert api.ThorConfig is ThorConfig
        assert api.ExecutionConfig is ExecutionConfig
        assert api.Thor is Thor
        assert api.ThorResult is ThorResult

    def test_package_root_exports_execution_config(self):
        import repro

        assert repro.ExecutionConfig is api.ExecutionConfig


class TestFacadeVerbs:
    @pytest.fixture(scope="class")
    def site(self):
        return api.make_site(domain="ecommerce", seed=7, records=40)

    def test_probe(self, site):
        sample = api.probe(site, api.ThorConfig(seed=7))
        assert len(sample.pages) > 0

    def test_probe_defaults_config(self, site):
        assert len(api.probe(site).pages) > 0

    def test_extract(self, site):
        sample = api.probe(site, api.ThorConfig(seed=7))
        result = api.extract(list(sample.pages), api.ThorConfig(seed=7))
        assert isinstance(result, api.ThorResult)
        assert result.pagelets

    def test_run_end_to_end(self, site):
        config = api.ThorConfig(
            seed=7, execution=api.ExecutionConfig(backend="python")
        )
        result = api.run(site, config)
        assert result.pagelets
        assert result.partitioned

    def test_legacy_kwargs_removed(self, site):
        # The one-release deprecation window for the bare
        # run_id/resume/streaming kwargs (PR 7) is over: they are now
        # plain TypeErrors, not warnings.
        with pytest.raises(TypeError):
            api.run(site, run_id="legacy")
        with pytest.raises(TypeError):
            api.run(site, streaming=True)

    def test_crawl_verb(self):
        from repro.discovery.web import SimulatedWeb

        report = api.crawl(
            SimulatedWeb(n_pages=15, n_portals=2, seed=1),
            config=api.ThorConfig(seed=1, crawl=api.CrawlConfig(max_pages=10)),
        )
        assert isinstance(report, api.CrawlReport)
        assert report.pages_fetched == 10
        assert "corpus-digest:" in api.format_crawl_report(report)

    def test_run_with_jobs(self, site):
        # n_jobs > 1 must not change seeded results (restart fan-out is
        # bitwise identical to the serial loop).
        serial = api.run(site, api.ThorConfig(seed=7))
        parallel = api.run(
            site, api.ThorConfig(seed=7, execution=api.ExecutionConfig(n_jobs=2))
        )
        assert [p.path for p in parallel.pagelets] == [
            p.path for p in serial.pagelets
        ]
        assert (
            parallel.clustering.clustering.labels
            == serial.clustering.clustering.labels
        )
