"""Tests for the ASCII reporting helpers."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.eval.reporting import format_histogram, format_series, format_table


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        text = format_table(["name", "v"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        # Separator row uses dashes matching column widths.
        assert set(lines[1].replace("  ", "")) == {"-"}
        assert len(lines) == 4

    def test_title_prepended(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_float_formatting(self):
        text = format_table(["x"], [[0.5]])
        assert "0.5" in text

    def test_zero_float(self):
        assert "0" in format_table(["x"], [[0.0]])

    @given(
        st.lists(
            st.lists(st.integers(0, 999), min_size=2, max_size=2),
            max_size=6,
        )
    )
    def test_all_rows_present(self, rows):
        text = format_table(["a", "b"], rows)
        assert len(text.splitlines()) == 2 + len(rows)


class TestFormatSeries:
    def test_one_row_per_x(self):
        text = format_series(
            "n", [1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]}
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "0.1000" in lines[2]
        assert "0.4000" in lines[3]

    def test_precision_knob(self):
        text = format_series("n", [1], {"s": [0.123456]}, precision=2)
        assert "0.12" in text
        assert "0.1235" not in text


class TestFormatHistogram:
    def test_bars_scale_to_peak(self):
        text = format_histogram([("lo", 10), ("hi", 5)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_counts_shown(self):
        text = format_histogram([("a", 3)])
        assert text.endswith("3")

    def test_zero_counts(self):
        text = format_histogram([("a", 0), ("b", 0)])
        assert "#" not in text

    def test_empty(self):
        assert format_histogram([]) == ""

    def test_title(self):
        assert format_histogram([("a", 1)], title="T").startswith("T\n")

    def test_labels_padded(self):
        text = format_histogram([("x", 1), ("longer", 1)])
        positions = [line.index("|") for line in text.splitlines()]
        assert len(set(positions)) == 1
