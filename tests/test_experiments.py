"""Tests for the experiment harnesses (small-scale smoke + semantics)."""

from __future__ import annotations

import pytest

from repro.config import ProbeConfig
from repro.deepweb import SyntheticPageGenerator
from repro.deepweb.corpus import generate_corpus
from repro.eval.experiments import (
    DISTANCE_VARIANTS,
    EntropyPoint,
    cluster_synthetic,
    clustering_quality_experiment,
    corpus_statistics,
    overall_experiment,
    phase2_distance_experiment,
    sensitivity_experiment,
    similarity_histogram_experiment,
    synthetic_scale_experiment,
    tradeoff_experiment,
)


@pytest.fixture(scope="module")
def tiny_corpus():
    # 2 sites × 33 probes keeps every harness fast.
    return generate_corpus(
        n_sites=2, probe_config=ProbeConfig(30, 3), seed=4
    )


@pytest.fixture(scope="module")
def synthetic(tiny_corpus):
    pages = [p for s in tiny_corpus for p in s.pages]
    return SyntheticPageGenerator.fit(pages).generate(120, seed=4)


class TestClusteringQuality:
    def test_structure_of_results(self, tiny_corpus):
        results = clustering_quality_experiment(
            tiny_corpus, ["ttag", "rand"], [5, 10], repeats=1, seed=4
        )
        assert set(results) == {"ttag", "rand"}
        for key in results:
            assert set(results[key]) == {5, 10}
            for point in results[key].values():
                assert isinstance(point, EntropyPoint)
                assert 0.0 <= point.entropy <= 1.0
                assert point.seconds >= 0.0
                assert point.runs == 2  # 2 sites × 1 repeat

    def test_ttag_beats_random(self, tiny_corpus):
        results = clustering_quality_experiment(
            tiny_corpus, ["ttag", "rand"], [20], repeats=2, seed=4
        )
        assert results["ttag"][20].entropy < results["rand"][20].entropy


class TestSyntheticScale:
    @pytest.mark.parametrize(
        "rep", ["ttag", "rtag", "tcon", "rcon", "size", "url", "rand"]
    )
    def test_every_representation_clusters(self, synthetic, rep):
        clustering = cluster_synthetic(
            synthetic[:40], rep, k=3, restarts=1, seed=4
        )
        assert clustering.n == 40

    def test_unknown_representation_raises(self, synthetic):
        with pytest.raises(ValueError):
            cluster_synthetic(synthetic[:10], "bogus")

    def test_scale_experiment_shape(self, synthetic):
        results = synthetic_scale_experiment(
            synthetic, ["ttag"], [40, 120], seed=4, entropy_restarts=2
        )
        assert set(results["ttag"]) == {40, 120}


class TestPhase2Harness:
    def test_all_variants_scored(self, tiny_corpus):
        scores = phase2_distance_experiment(tiny_corpus, seed=4)
        assert set(scores) == set(DISTANCE_VARIANTS)
        for score in scores.values():
            assert 0.0 <= score.precision <= 1.0
            assert 0.0 <= score.recall <= 1.0

    def test_histogram_bucket_count(self, tiny_corpus):
        hist = similarity_histogram_experiment(
            tiny_corpus, use_tfidf=True, buckets=4, seed=4
        )
        assert len(hist) == 4
        assert all(count >= 0 for _, count in hist)

    def test_histogram_mass_constant_across_weighting(self, tiny_corpus):
        with_t = similarity_histogram_experiment(
            tiny_corpus, use_tfidf=True, seed=4
        )
        without = similarity_histogram_experiment(
            tiny_corpus, use_tfidf=False, seed=4
        )
        assert sum(c for _, c in with_t) == sum(c for _, c in without)


class TestPipelineHarnesses:
    def test_overall_experiment_keys(self, tiny_corpus):
        scores = overall_experiment(tiny_corpus, ["ttag", "rand"], seed=4)
        assert set(scores) == {"ttag", "rand"}
        assert scores["ttag"].f1 >= scores["rand"].f1

    def test_tradeoff_monotone_recall(self, tiny_corpus):
        scores = tradeoff_experiment(
            tiny_corpus, m_values=(1, 2), k=3, seed=4
        )
        assert scores[1].recall <= scores[2].recall + 1e-9

    def test_sensitivity_grid(self, tiny_corpus):
        grid = sensitivity_experiment(
            tiny_corpus, k_values=(2, 3), restart_values=(2,), seed=4
        )
        assert set(grid) == {(2, 2), (3, 2)}


class TestCorpusStatistics:
    def test_stats_fields(self, tiny_corpus):
        stats = corpus_statistics(tiny_corpus)
        assert stats.pages == sum(len(s.pages) for s in tiny_corpus)
        assert stats.avg_distinct_tags > 0
        assert stats.avg_distinct_terms > stats.avg_distinct_tags
        assert stats.avg_parse_seconds > 0

    def test_empty(self):
        stats = corpus_statistics([])
        assert stats.pages == 0
