"""Tests for the Phase-1 cluster-ranking criteria."""

from __future__ import annotations

import pytest

from repro.cluster.assignments import Clustering
from repro.core.cluster_ranking import rank_clusters, score_clusters
from repro.core.page import Page


def rich_page():
    rows = "".join(
        f"<tr><td>alpha{i} beta{i} gamma{i}</td><td>delta{i}</td></tr>"
        for i in range(8)
    )
    return Page(f"<html><body><table>{rows}</table></body></html>")


def poor_page():
    return Page("<html><body><p>no matches found</p></body></html>")


class TestScoreClusters:
    def test_rich_cluster_outranks_poor(self):
        pages = [rich_page(), rich_page(), poor_page(), poor_page()]
        clustering = Clustering((0, 0, 1, 1), 2)
        scores = score_clusters(pages, clustering)
        assert scores[0].cluster == 0
        assert scores[0].combined > scores[1].combined

    def test_criteria_computed(self):
        pages = [rich_page(), poor_page()]
        clustering = Clustering((0, 1), 2)
        scores = {s.cluster: s for s in score_clusters(pages, clustering)}
        assert scores[0].avg_distinct_terms > scores[1].avg_distinct_terms
        assert scores[0].avg_fanout > scores[1].avg_fanout
        assert scores[0].avg_page_size > scores[1].avg_page_size

    def test_empty_clusters_skipped(self):
        pages = [rich_page()]
        clustering = Clustering((0,), 3)
        scores = score_clusters(pages, clustering)
        assert len(scores) == 1

    def test_combined_bounded_by_one(self):
        pages = [rich_page(), poor_page(), poor_page()]
        clustering = Clustering((0, 1, 1), 2)
        for score in score_clusters(pages, clustering):
            assert 0.0 <= score.combined <= 1.0 + 1e-9

    def test_best_cluster_scores_one_with_equal_weights(self):
        # The cluster that is max on all three criteria gets exactly 1.
        pages = [rich_page(), poor_page()]
        clustering = Clustering((0, 1), 2)
        top = score_clusters(pages, clustering)[0]
        assert top.combined == pytest.approx(1.0)

    def test_custom_weights_change_order(self):
        # A page with a huge fanout but few terms...
        wide = Page(
            "<html><body><ul>"
            + "<li>x</li>" * 30
            + "</ul></body></html>"
        )
        # ...versus a page with many terms but low fanout.
        wordy_text = " ".join(f"word{i}" for i in range(120))
        wordy = Page(f"<html><body><p>{wordy_text}</p></body></html>")
        clustering = Clustering((0, 1), 2)
        by_fanout = rank_clusters(
            [wide, wordy], clustering, weights=(0.0, 1.0, 0.0)
        )
        by_terms = rank_clusters(
            [wide, wordy], clustering, weights=(1.0, 0.0, 0.0)
        )
        assert by_fanout[0] == 0
        assert by_terms[0] == 1

    def test_sizes_recorded(self):
        pages = [rich_page(), rich_page(), poor_page()]
        clustering = Clustering((0, 0, 1), 2)
        scores = {s.cluster: s for s in score_clusters(pages, clustering)}
        assert scores[0].size == 2
        assert scores[1].size == 1
