"""Integration tests for Phase-2 identification on simulated clusters."""

from __future__ import annotations

import pytest

from repro.config import SubtreeConfig
from repro.core.identification import PageletIdentifier
from repro.core.page import Page
from repro.deepweb import make_site
from repro.deepweb.corpus import probe_site
from repro.errors import ExtractionError


@pytest.fixture(scope="module")
def sample():
    return probe_site(make_site("ecommerce", seed=13, error_rate=0.0), seed=13)


def cluster_of(sample, label):
    return [p for p in sample.pages if p.class_label == label]


class TestIdentifyOnRealClusters:
    def test_multi_cluster_extracts_gold_pagelets(self, sample):
        pages = cluster_of(sample, "multi")
        assert len(pages) >= 2
        result = PageletIdentifier(SubtreeConfig(), seed=13).identify(pages)
        assert len(result.pagelets) == len(pages)
        correct = sum(
            1 for p in result.pagelets if p.path == p.page.gold_pagelet_path
        )
        # Per-page template jitter (an extra wrapper on some pages)
        # can cost one wrapper level on those pages; the bulk must be
        # exact.
        assert correct / len(result.pagelets) >= 0.75

    def test_single_cluster_extracts_gold_pagelets(self, sample):
        pages = cluster_of(sample, "single")
        result = PageletIdentifier(SubtreeConfig(), seed=13).identify(pages)
        correct = sum(
            1 for p in result.pagelets if p.path == p.page.gold_pagelet_path
        )
        assert correct / max(1, len(result.pagelets)) >= 0.8

    def test_pagelets_annotated_with_contained_paths(self, sample):
        pages = cluster_of(sample, "multi")
        result = PageletIdentifier(SubtreeConfig(), seed=13).identify(pages)
        # Result rows are dynamic, so multi pagelets must carry
        # QA-Object recommendations.
        annotated = [p for p in result.pagelets if p.contained_dynamic_paths]
        assert len(annotated) >= len(result.pagelets) // 2

    def test_ranked_sets_exposed_sorted(self, sample):
        pages = cluster_of(sample, "multi")
        result = PageletIdentifier(SubtreeConfig(), seed=13).identify(pages)
        # Ordering is by backend-quantized similarity: ulp-level ties
        # keep discovery order, so compare at the sort's precision.
        from repro.core.subtree_ranking import _SORT_PRECISION

        sims = [round(r.similarity, _SORT_PRECISION) for r in result.ranked_sets]
        assert sims == sorted(sims)

    def test_pagelet_for_lookup(self, sample):
        pages = cluster_of(sample, "multi")
        result = PageletIdentifier(SubtreeConfig(), seed=13).identify(pages)
        found = result.pagelet_for(0)
        assert found is None or found.page is pages[0]

    def test_deterministic(self, sample):
        pages = cluster_of(sample, "multi")
        a = PageletIdentifier(SubtreeConfig(), seed=13).identify(pages)
        b = PageletIdentifier(SubtreeConfig(), seed=13).identify(pages)
        assert [p.path for p in a.pagelets] == [p.path for p in b.pagelets]


class TestEdgeCases:
    def test_empty_cluster_raises(self):
        with pytest.raises(ExtractionError):
            PageletIdentifier().identify([])

    def test_contentless_cluster_yields_no_pagelets(self):
        pages = [Page("<html><body></body></html>") for _ in range(3)]
        result = PageletIdentifier(seed=0).identify(pages)
        assert result.pagelets == ()

    def test_single_page_cluster(self, sample):
        pages = cluster_of(sample, "multi")[:1]
        result = PageletIdentifier(SubtreeConfig(), seed=13).identify(pages)
        # One page gives no cross-page contrast: sets are all
        # singletons (similarity 1.0 → static) so nothing is extracted.
        assert isinstance(result.pagelets, tuple)

    def test_identical_pages_cluster(self):
        html = (
            "<html><body><table><tr><td>same</td></tr>"
            "<tr><td>rows</td></tr></table></body></html>"
        )
        pages = [Page(html) for _ in range(4)]
        result = PageletIdentifier(seed=0).identify(pages)
        # Identical pages have no dynamic content at all.
        assert result.pagelets == ()
