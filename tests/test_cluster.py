"""Tests for the clustering substrate."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import (
    Clustering,
    KMeans,
    KMedoids,
    ScalarKMeans,
    cluster_entropy,
    clustering_entropy,
    clustering_similarity,
    levenshtein,
    normalized_levenshtein,
    random_clustering,
    tree_edit_distance,
)
from repro.cluster.quality import purity
from repro.cluster.treeedit import normalized_tree_edit_distance
from repro.errors import ClusteringError, EvaluationError
from repro.html import parse
from repro.vsm import SparseVector


class TestClustering:
    def test_members(self):
        c = Clustering((0, 1, 0, 1), 2)
        assert c.members(0) == (0, 2)
        assert c.members(1) == (1, 3)

    def test_from_labels_infers_k(self):
        c = Clustering.from_labels([0, 2, 1])
        assert c.k == 3

    def test_empty_cluster_allowed(self):
        c = Clustering((0, 0), 3)
        assert c.sizes() == [2, 0, 0]
        assert c.non_empty_clusters() == [0]

    def test_select(self):
        c = Clustering((0, 1, 0), 2)
        assert c.select(["a", "b", "c"], 0) == ["a", "c"]

    def test_bad_k_raises(self):
        with pytest.raises(ClusteringError):
            Clustering((), 0)

    def test_out_of_range_label_raises(self):
        with pytest.raises(ClusteringError):
            Clustering((5,), 2)

    @given(st.lists(st.integers(0, 3), max_size=30))
    def test_members_partition_items(self, labels):
        c = Clustering.from_labels(labels, k=4)
        all_members = [i for cluster in range(4) for i in c.members(cluster)]
        assert sorted(all_members) == list(range(len(labels)))


def _two_blob_vectors(n_per=10):
    blob_a = [SparseVector({"a": 1.0, "x": 0.05 * (i % 3)}) for i in range(n_per)]
    blob_b = [SparseVector({"b": 1.0, "y": 0.05 * (i % 3)}) for i in range(n_per)]
    return blob_a + blob_b


class TestKMeans:
    def test_separates_clear_blobs(self):
        vectors = _two_blob_vectors()
        result = KMeans(2, seed=0).fit(vectors)
        labels = result.clustering.labels
        assert len(set(labels[:10])) == 1
        assert len(set(labels[10:])) == 1
        assert labels[0] != labels[10]

    def test_k_greater_than_n_degrades(self):
        vectors = [SparseVector({"a": 1.0})] * 3
        result = KMeans(10, seed=0).fit(vectors)
        assert result.clustering.n == 3

    def test_empty_input_raises(self):
        with pytest.raises(ClusteringError):
            KMeans(2).fit([])

    def test_invalid_k_raises(self):
        with pytest.raises(ClusteringError):
            KMeans(0)

    def test_invalid_restarts_raises(self):
        with pytest.raises(ClusteringError):
            KMeans(2, restarts=0)

    def test_deterministic_with_seed(self):
        vectors = _two_blob_vectors()
        a = KMeans(2, seed=42).fit(vectors).clustering.labels
        b = KMeans(2, seed=42).fit(vectors).clustering.labels
        assert a == b

    def test_internal_similarity_reported(self):
        vectors = _two_blob_vectors()
        result = KMeans(2, seed=0).fit(vectors)
        assert result.internal_similarity > 0

    def test_more_restarts_never_hurts(self):
        vectors = _two_blob_vectors(6)
        few = KMeans(3, restarts=1, seed=7).fit(vectors).internal_similarity
        many = KMeans(3, restarts=15, seed=7).fit(vectors).internal_similarity
        assert many >= few - 1e-9

    def test_handles_zero_vectors(self):
        vectors = [SparseVector({"a": 1.0}), SparseVector(), SparseVector({"b": 1.0})]
        result = KMeans(2, seed=0).fit(vectors)
        assert result.clustering.n == 3


class TestScalarKMeans:
    def test_separates_scales(self):
        values = [10.0] * 5 + [1000.0] * 5
        labels = ScalarKMeans(2, seed=0).fit(values).clustering.labels
        assert labels[0] != labels[5]
        assert len(set(labels[:5])) == 1

    def test_single_distinct_value(self):
        result = ScalarKMeans(3, seed=0).fit([5.0, 5.0, 5.0])
        assert result.clustering.n == 3

    def test_empty_raises(self):
        with pytest.raises(ClusteringError):
            ScalarKMeans(2).fit([])


class TestKMedoids:
    def test_separates_string_groups(self):
        items = ["aaaa1", "aaaa2", "aaaa3", "zzzzzzz1", "zzzzzzz2"]
        result = KMedoids(2, distance=lambda a, b: float(levenshtein(a, b)), seed=0).fit(items)
        labels = result.clustering.labels
        assert len(set(labels[:3])) == 1
        assert labels[0] != labels[3]

    def test_medoid_is_member(self):
        items = ["ab", "abc", "abcd"]
        result = KMedoids(1, distance=lambda a, b: float(levenshtein(a, b)), seed=0).fit(items)
        assert result.medoid_indices[0] in range(3)

    def test_empty_raises(self):
        with pytest.raises(ClusteringError):
            KMedoids(2, distance=lambda a, b: 0.0).fit([])


class TestRandomBaseline:
    def test_covers_n(self):
        c = random_clustering(25, 4, seed=3)
        assert c.n == 25
        assert c.k == 4

    def test_deterministic(self):
        assert random_clustering(10, 3, seed=1).labels == random_clustering(10, 3, seed=1).labels

    def test_invalid(self):
        with pytest.raises(ClusteringError):
            random_clustering(-1, 2)
        with pytest.raises(ClusteringError):
            random_clustering(2, 0)


class TestEditDistance:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("cat", "cake", 2),  # the paper's example
            ("", "", 0),
            ("", "abc", 3),
            ("abc", "abc", 0),
            ("kitten", "sitting", 3),
            ("he", "het", 1),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_normalized_paper_example(self):
        # he vs het -> 1/3 (Section 3.2.1).
        assert math.isclose(normalized_levenshtein("he", "het"), 1 / 3)

    def test_normalized_empty(self):
        assert normalized_levenshtein("", "") == 0.0

    @given(st.text(max_size=25), st.text(max_size=25))
    def test_symmetric(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(st.text(max_size=25), st.text(max_size=25))
    def test_bounds(self, a, b):
        d = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))
        assert 0.0 <= normalized_levenshtein(a, b) <= 1.0

    @settings(max_examples=30)
    @given(st.text(max_size=12), st.text(max_size=12), st.text(max_size=12))
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestEntropy:
    def test_pure_clusters_zero(self):
        c = Clustering((0, 0, 1, 1), 2)
        assert clustering_entropy(c, ["a", "a", "b", "b"]) == 0.0

    def test_worst_case_one(self):
        c = Clustering((0, 1, 0, 1), 2)
        assert math.isclose(clustering_entropy(c, ["a", "a", "b", "b"]), 1.0)

    def test_single_class_zero(self):
        c = Clustering((0, 1), 2)
        assert clustering_entropy(c, ["a", "a"]) == 0.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(EvaluationError):
            clustering_entropy(Clustering((0,), 1), ["a", "b"])

    def test_cluster_entropy_range(self):
        assert cluster_entropy(["a", "b"], 2) == 1.0
        assert cluster_entropy(["a", "a"], 2) == 0.0
        assert cluster_entropy([], 2) == 0.0

    def test_purity_complements_entropy(self):
        perfect = Clustering((0, 0, 1, 1), 2)
        assert purity(perfect, ["a", "a", "b", "b"]) == 1.0
        mixed = Clustering((0, 1, 0, 1), 2)
        assert purity(mixed, ["a", "a", "b", "b"]) == 0.5

    @given(
        st.lists(st.sampled_from("ab"), min_size=2, max_size=20),
        st.lists(st.integers(0, 2), min_size=2, max_size=20),
    )
    def test_entropy_in_unit_interval(self, classes, labels):
        n = min(len(classes), len(labels))
        c = Clustering.from_labels(labels[:n], k=3)
        value = clustering_entropy(c, classes[:n])
        assert 0.0 <= value <= 1.0 + 1e-9


class TestClusteringSimilarity:
    def test_identical_members_high(self):
        vectors = [SparseVector({"a": 1.0})] * 4
        c = Clustering((0, 0, 1, 1), 2)
        # Each cluster contributes (2/4)*2 = 1.0
        assert math.isclose(clustering_similarity(vectors, c), 2.0)

    def test_mismatch_raises(self):
        with pytest.raises(EvaluationError):
            clustering_similarity([SparseVector()], Clustering((0, 0), 1))


class TestTreeEditDistance:
    def test_identical_trees_zero(self):
        t = parse("<html><body><p>x</p></body></html>")
        assert tree_edit_distance(t, t) == 0.0

    def test_single_relabel(self):
        a = parse("<html><body><p>x</p></body></html>")
        b = parse("<html><body><div>x</div></body></html>")
        assert tree_edit_distance(a, b) == 1.0

    def test_single_insert(self):
        a = parse("<html><body></body></html>")
        b = parse("<html><body><p></p></body></html>")
        assert tree_edit_distance(a, b) == 1.0

    def test_symmetric(self):
        a = parse("<html><table><tr><td>x</td></tr></table></html>")
        b = parse("<html><ul><li>x</li><li>y</li></ul></html>")
        assert tree_edit_distance(a, b) == tree_edit_distance(b, a)

    def test_bounded_by_sizes(self):
        a = parse("<html><p>x</p></html>")
        b = parse("<html><table><tr><td>y</td><td>z</td></tr></table></html>")
        d = tree_edit_distance(a, b)
        assert d <= a.size() + b.size()

    def test_normalized_range(self):
        a = parse("<html><p>x</p></html>")
        b = parse("<html><div><div><div>y</div></div></div></html>")
        assert 0.0 <= normalized_tree_edit_distance(a, b) <= 1.0

    def test_custom_relabel_cost(self):
        a = parse("<html><p>x</p></html>")
        b = parse("<html><div>x</div></html>")
        free = tree_edit_distance(a, b, relabel_cost=lambda x, y: 0.0)
        assert free == 0.0

    def test_deep_tree_no_recursion_error(self):
        deep = "<html>" + "<div>" * 300 + "x" + "</div>" * 300 + "</html>"
        t = parse(deep)
        assert tree_edit_distance(t, t) == 0.0


class TestKMeansPlusPlus:
    def test_invalid_init_raises(self):
        with pytest.raises(ClusteringError):
            KMeans(2, init="bogus")

    def test_separates_blobs(self):
        vectors = _two_blob_vectors()
        result = KMeans(2, init="kmeans++", seed=0).fit(vectors)
        labels = result.clustering.labels
        assert labels[0] != labels[10]
        assert len(set(labels[:10])) == 1

    def test_finds_small_class_with_one_restart(self):
        # 40 near-identical vectors plus a 3-vector minority class:
        # distance-weighted seeding reliably places a center on the
        # minority even without restarts.
        majority = [SparseVector({"a": 1.0, "x": 0.01 * (i % 5)}) for i in range(40)]
        minority = [SparseVector({"b": 1.0}) for _ in range(3)]
        vectors = majority + minority
        result = KMeans(2, restarts=1, init="kmeans++", seed=4).fit(vectors)
        labels = result.clustering.labels
        assert labels[0] != labels[40]

    def test_deterministic(self):
        vectors = _two_blob_vectors()
        a = KMeans(3, init="kmeans++", seed=8).fit(vectors).clustering.labels
        b = KMeans(3, init="kmeans++", seed=8).fit(vectors).clustering.labels
        assert a == b

    def test_quality_not_worse_than_random_init(self):
        vectors = _two_blob_vectors()
        random_init = KMeans(2, restarts=5, seed=3).fit(vectors)
        plusplus = KMeans(2, restarts=5, init="kmeans++", seed=3).fit(vectors)
        assert plusplus.internal_similarity >= random_init.internal_similarity - 1e-6
