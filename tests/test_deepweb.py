"""Tests for the deep-web simulation substrate."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.deepweb import (
    LabeledPage,
    Record,
    SearchableDatabase,
    SimulatedDeepWebSite,
    generate_corpus,
    make_site,
)
from repro.deepweb.corpus import class_distribution, probe_site
from repro.deepweb.domains import DOMAINS, get_domain
from repro.deepweb.site import CLASS_MULTI, CLASS_NOMATCH, CLASS_SINGLE
from repro.errors import SiteGenerationError
from repro.html import parse, resolve_path


class TestRecordsAndDomains:
    def test_all_domains_present(self):
        assert set(DOMAINS) == {
            "ecommerce", "music", "library", "jobs", "realestate",
            "travel", "movies",
        }

    @pytest.mark.parametrize("name", sorted(DOMAINS))
    def test_records_generated_with_fields(self, name):
        spec = get_domain(name)
        records = spec.generate_records(20, seed=1)
        assert len(records) == 20
        for record in records:
            assert record.searchable_text()
            assert record.get("blurb")

    def test_unknown_domain_raises(self):
        with pytest.raises(KeyError):
            get_domain("astrology")

    def test_records_deterministic(self):
        spec = get_domain("music")
        a = spec.generate_records(5, seed=3)
        b = spec.generate_records(5, seed=3)
        assert [r.fields for r in a] == [r.fields for r in b]

    def test_rare_words_unique_per_record(self):
        spec = get_domain("jobs")
        records = spec.generate_records(50, seed=0)
        db = SearchableDatabase(records)
        singles = sum(1 for c in db.selectivity_histogram().items() if c[0] == 1)
        assert singles >= 1

    def test_too_many_records_raises(self):
        spec = get_domain("library")
        with pytest.raises(SiteGenerationError):
            spec.generate_records(100, seed=0, dictionary=["a", "b", "c"])

    def test_negative_count_raises(self):
        with pytest.raises(SiteGenerationError):
            get_domain("music").generate_records(-1)

    def test_record_getitem(self):
        record = Record(0, {"title": "x"})
        assert record["title"] == "x"
        assert record.get("missing", "d") == "d"


class TestSearchableDatabase:
    def records(self):
        return [
            Record(0, {"title": "red camera", "blurb": "portable zoom"}),
            Record(1, {"title": "blue camera", "blurb": "compact"}),
            Record(2, {"title": "green phone", "blurb": "compact"}),
        ]

    def test_query_exact_word(self):
        db = SearchableDatabase(self.records())
        assert [r.record_id for r in db.query("camera")] == [0, 1]

    def test_query_case_insensitive(self):
        db = SearchableDatabase(self.records())
        assert db.match_count("CAMERA") == 2

    def test_query_no_match(self):
        db = SearchableDatabase(self.records())
        assert db.query("zeppelin") == []

    def test_query_multiword_conjunctive(self):
        db = SearchableDatabase(self.records())
        assert [r.record_id for r in db.query("compact camera")] == [1]

    def test_query_empty_string(self):
        db = SearchableDatabase(self.records())
        assert db.query("") == []

    def test_empty_database_raises(self):
        with pytest.raises(SiteGenerationError):
            SearchableDatabase([])

    def test_vocabulary(self):
        db = SearchableDatabase(self.records())
        assert "camera" in db.vocabulary()

    def test_selectivity_histogram(self):
        db = SearchableDatabase(self.records())
        hist = db.selectivity_histogram()
        assert hist[2] >= 2  # camera, compact


class TestSimulatedSite:
    def test_nomatch_for_nonsense(self):
        site = make_site("ecommerce", seed=1)
        page = site.query("zzzqqqxxx")
        assert page.class_label == CLASS_NOMATCH
        assert page.gold_pagelet_path is None
        assert not page.has_pagelet

    def test_single_match_page(self):
        site = make_site("ecommerce", seed=1, error_rate=0.0)
        word = next(
            w for w, c in (
                (w, site.database.match_count(w))
                for w in site.database.vocabulary()
            ) if c == 1
        )
        page = site.query(word)
        assert page.class_label == CLASS_SINGLE
        assert page.gold_pagelet_path
        assert page.gold_object_paths == (page.gold_pagelet_path,)

    def test_multi_match_page(self):
        site = make_site("ecommerce", seed=1, error_rate=0.0)
        word = next(
            w for w in site.database.vocabulary()
            if site.database.match_count(w) >= 3
        )
        page = site.query(word)
        assert page.class_label == CLASS_MULTI
        assert len(page.gold_object_paths) >= 2

    def test_gold_paths_resolve(self):
        site = make_site("music", seed=5, error_rate=0.0)
        word = next(
            w for w in site.database.vocabulary()
            if site.database.match_count(w) >= 2
        )
        page = site.query(word)
        tree = parse(page.html)
        container = resolve_path(tree, page.gold_pagelet_path)
        assert container.get("id") == site.theme.results_id
        for path in page.gold_object_paths:
            node = resolve_path(tree, path)
            assert node.get("class") == "item"

    def test_multi_capped_at_max_results(self):
        site = make_site("library", seed=2, error_rate=0.0)
        common = max(
            site.database.vocabulary(),
            key=lambda w: site.database.match_count(w),
        )
        page = site.query(common)
        assert len(page.gold_object_paths) <= site.theme.max_results

    def test_error_pages_deterministic(self):
        site = make_site("jobs", seed=3, error_rate=0.5)
        a = site.query("camera").class_label
        b = site.query("camera").class_label
        assert a == b

    def test_error_rate_zero_never_errors(self):
        site = make_site("jobs", seed=3, error_rate=0.0)
        for word in ["alpha", "beta", "gamma", "delta"]:
            assert site.query(word).class_label != "error"

    def test_url_contains_query(self):
        site = make_site("ecommerce", seed=1)
        page = site.query("apple")
        assert "q=apple" in page.url

    def test_page_deterministic(self):
        site_a = make_site("ecommerce", seed=1)
        site_b = make_site("ecommerce", seed=1)
        assert site_a.query("apple").html == site_b.query("apple").html

    def test_different_seeds_different_themes(self):
        themes = {make_site("ecommerce", seed=s).theme.result_style for s in range(8)}
        assert len(themes) > 1


class TestCorpus:
    def test_probe_site_yields_labeled_pages(self):
        site = make_site("music", seed=4)
        sample = probe_site(site, seed=4)
        assert len(sample.pages) > 100
        assert all(isinstance(p, LabeledPage) for p in sample.pages)

    def test_class_mix_contains_all_main_classes(self):
        site = make_site("ecommerce", seed=4)
        sample = probe_site(site, seed=4)
        counts = Counter(sample.classes)
        assert counts[CLASS_NOMATCH] > 0
        assert counts[CLASS_SINGLE] > 0
        assert counts[CLASS_MULTI] > 0

    def test_pagelet_pages_filter(self):
        site = make_site("ecommerce", seed=4)
        sample = probe_site(site, seed=4)
        assert all(p.has_pagelet for p in sample.pagelet_pages())

    def test_generate_corpus_shapes(self):
        samples = generate_corpus(n_sites=5, seed=9)
        assert len(samples) == 5
        domains = {s.site.domain.name for s in samples}
        assert len(domains) == 5  # cycles through all five domains

    def test_class_distribution_sums_to_one(self):
        samples = generate_corpus(n_sites=3, seed=9)
        dist = class_distribution(samples)
        assert abs(sum(dist.values()) - 1.0) < 1e-9

    def test_class_distribution_empty(self):
        assert class_distribution([]) == {}
