"""Tests for page caching and result export."""

from __future__ import annotations

import json

import pytest

from repro import Thor, ThorConfig
from repro.core.page import Page
from repro.deepweb import make_site
from repro.deepweb.site import LabeledPage
from repro.errors import ThorError
from repro.io import (
    export_result,
    load_pages,
    pagelet_to_dict,
    partitioned_to_dict,
    result_to_dict,
    save_pages,
)


class TestPageCache:
    def test_roundtrip_plain_pages(self, tmp_path):
        pages = [
            Page("<html><body><p>a</p></body></html>", url="http://x/?q=a", query="a"),
            Page("<html><body><p>b</p></body></html>", url="http://x/?q=b", query="b"),
        ]
        path = tmp_path / "pages.jsonl"
        assert save_pages(pages, path) == 2
        loaded = load_pages(path)
        assert [p.html for p in loaded] == [p.html for p in pages]
        assert [p.url for p in loaded] == [p.url for p in pages]
        assert [p.query for p in loaded] == ["a", "b"]
        assert all(type(p) is Page for p in loaded)

    def test_roundtrip_labeled_pages(self, tmp_path):
        site = make_site("music", seed=2)
        pages = [site.query(w) for w in ("blue", "zzzqqq")]
        path = tmp_path / "labeled.jsonl"
        save_pages(pages, path)
        loaded = load_pages(path)
        assert all(isinstance(p, LabeledPage) for p in loaded)
        assert [p.class_label for p in loaded] == [p.class_label for p in pages]
        assert [p.gold_pagelet_path for p in loaded] == [
            p.gold_pagelet_path for p in pages
        ]
        assert [p.gold_object_paths for p in loaded] == [
            p.gold_object_paths for p in pages
        ]

    def test_unicode_survives(self, tmp_path):
        pages = [Page("<html><body>café — 東京</body></html>")]
        path = tmp_path / "u.jsonl"
        save_pages(pages, path)
        assert "café" in load_pages(path)[0].html

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert load_pages(path) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        record = json.dumps({"html": "<p>x</p>", "url": "", "query": ""})
        path.write_text(f"{record}\n\n{record}\n")
        assert len(load_pages(path)) == 2

    def test_malformed_line_skipped_with_warning(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"html": "<p>x</p>"}\nnot json\n{"html": "<p>y</p>"}\n')
        with pytest.warns(UserWarning, match=":2"):
            loaded = load_pages(path)
        assert [p.html for p in loaded] == ["<p>x</p>", "<p>y</p>"]
        assert loaded.skipped == 1

    def test_malformed_line_raises_in_strict_mode(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"html": "<p>x</p>"}\nnot json\n')
        with pytest.raises(ThorError, match=":2"):
            load_pages(path, strict=True)

    def test_missing_html_field_skipped(self, tmp_path):
        path = tmp_path / "nohtml.jsonl"
        path.write_text('{"url": "x"}\n')
        with pytest.warns(UserWarning, match=":1"):
            loaded = load_pages(path)
        assert loaded == []
        assert loaded.skipped == 1

    def test_missing_html_field_raises_in_strict_mode(self, tmp_path):
        path = tmp_path / "nohtml.jsonl"
        path.write_text('{"url": "x"}\n')
        with pytest.raises(ThorError):
            load_pages(path, strict=True)

    def test_clean_file_reports_zero_skipped(self, tmp_path):
        path = tmp_path / "clean.jsonl"
        path.write_text('{"html": "<p>x</p>"}\n')
        assert load_pages(path).skipped == 0

    def test_extraction_works_from_cache(self, tmp_path):
        site = make_site("ecommerce", seed=19)
        thor = Thor(ThorConfig(seed=19))
        probe = thor.probe(site)
        path = tmp_path / "cache.jsonl"
        save_pages(list(probe.pages), path)
        result = thor.extract(load_pages(path))
        assert result.pagelets


class TestExport:
    @pytest.fixture(scope="class")
    def result(self):
        site = make_site("ecommerce", seed=29, error_rate=0.0)
        return Thor(ThorConfig(seed=29)).run(site)

    def test_pagelet_dict_fields(self, result):
        record = pagelet_to_dict(result.pagelets[0])
        assert set(record) >= {
            "page_url", "probe_query", "path", "rank", "score", "text", "html"
        }
        assert record["html"].startswith("<")

    def test_html_optional(self, result):
        record = pagelet_to_dict(result.pagelets[0], include_html=False)
        assert "html" not in record

    def test_partitioned_dict(self, result):
        record = partitioned_to_dict(result.partitioned[0])
        assert record["objects"]
        assert all({"path", "text"} <= set(o) for o in record["objects"])

    def test_result_dict_summary(self, result):
        record = result_to_dict(result)
        assert record["pages"] == len(result.pages)
        assert len(record["clusters"]) >= 2
        assert len(record["pagelets"]) == len(result.pagelets)

    def test_export_file_is_valid_json(self, result, tmp_path):
        path = tmp_path / "out.json"
        export_result(result, path)
        loaded = json.loads(path.read_text())
        assert loaded["pages"] == len(result.pages)

    def test_export_json_serializable_with_html(self, result, tmp_path):
        path = tmp_path / "out_html.json"
        export_result(result, path, include_html=True)
        loaded = json.loads(path.read_text())
        assert loaded["pagelets"][0]["html"].startswith("<")
