"""Smoke tests: the example scripts must run clean end-to-end.

Each example is executed in-process (imported as a module and its
``main`` called) to keep the suite fast while still exercising the
exact code a user would run.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main(seed=7)
        output = capsys.readouterr().out
        assert "QA-Pagelets" in output
        assert "QA-Objects" in output

    def test_ecommerce_extraction(self, capsys):
        load_example("ecommerce_extraction").main(seed=11)
        output = capsys.readouterr().out
        assert "product records" in output
        assert "Ground truth" in output

    def test_scalability_demo_small(self, capsys):
        load_example("scalability_demo").main(max_pages=550)
        output = capsys.readouterr().out
        assert "Entropy vs collection size" in output

    def test_deepweb_search_engine(self, capsys):
        load_example("deepweb_search_engine").main("camera")
        output = capsys.readouterr().out
        assert "Fine-grained content search" in output
        assert "Search by site" in output

    def test_discover_and_index(self, capsys):
        load_example("discover_and_index").main("camera")
        output = capsys.readouterr().out
        assert "unique search forms" in output

    @pytest.mark.slow
    def test_robustness_demo(self, capsys):
        load_example("robustness_demo").main()
        output = capsys.readouterr().out
        assert "redesign" in output.lower()

    @pytest.mark.slow
    def test_multisite_survey(self, capsys):
        load_example("multisite_survey").main(n_sites=2)
        output = capsys.readouterr().out
        assert "extraction quality per site" in output
