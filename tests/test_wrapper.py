"""Tests for wrapper induction and adaptive extraction."""

from __future__ import annotations

import pytest

from repro import Thor, ThorConfig
from repro.core.wrapper import AdaptiveExtractor, SiteWrapper
from repro.deepweb import make_site
from repro.deepweb.database import SearchableDatabase
from repro.deepweb.site import SimulatedDeepWebSite
from repro.deepweb.templates import SiteTheme
from repro.errors import ExtractionError


@pytest.fixture(scope="module")
def site():
    return make_site("ecommerce", seed=51, error_rate=0.0)


@pytest.fixture(scope="module")
def thor():
    return Thor(ThorConfig(seed=51))


@pytest.fixture(scope="module")
def result(site, thor):
    return thor.extract(list(thor.probe(site).pages))


class TestInduce:
    def test_rules_learned(self, result):
        wrapper = SiteWrapper.induce(result)
        assert wrapper.rules
        assert wrapper.rules[0].support >= wrapper.rules[-1].support

    def test_empty_result_raises(self, result):
        from dataclasses import replace

        empty = replace(result, pagelets=())
        with pytest.raises(ExtractionError):
            SiteWrapper.induce(empty)


class TestApply:
    def test_matches_fresh_pages_from_same_site(self, site, thor, result):
        wrapper = SiteWrapper.induce(result)
        # Fresh queries the wrapper never saw.
        fresh = [site.query(w) for w in ("river", "mountain", "bread")]
        content = [p for p in fresh if p.gold_pagelet_path]
        if not content:
            pytest.skip("no content pages among the fresh probes")
        for page in content:
            match = wrapper.apply(page)
            assert not match.drifted
            assert match.pagelet is not None
            assert match.pagelet.path == page.gold_pagelet_path

    def test_empty_page_reports_drift(self, result):
        from repro.core.page import Page

        wrapper = SiteWrapper.induce(result)
        match = wrapper.apply(Page("<html><body></body></html>"))
        assert match.drifted
        assert match.pagelet is None

    def test_redesign_detected_as_drift(self, site, result):
        wrapper = SiteWrapper.induce(result)
        # Different theme: divs/dl instead of the learned markup.
        redesign = SimulatedDeepWebSite(
            SearchableDatabase(site.database.records),
            site.domain,
            SiteTheme.generate("ecommerce", seed=5151),
        )
        fresh = [redesign.query(w) for w in ("river", "mountain", "bread",
                                             "cheese", "window")]
        _pagelets, drifted = wrapper.apply_all(fresh)
        # Either the site drifted wholesale, or (if the redesigned
        # theme happens to share the result markup) matches are fine —
        # but matches must then be the correct regions.
        if not drifted:
            for page in fresh:
                if page.gold_pagelet_path:
                    match = wrapper.apply(page)
                    if match.pagelet is not None:
                        assert match.pagelet.path == page.gold_pagelet_path


class TestAdaptiveExtractor:
    def test_first_batch_runs_discovery(self, site, thor):
        adaptive = AdaptiveExtractor(thor)
        pages = list(thor.probe(site).pages)
        pagelets = adaptive.extract(pages)
        assert pagelets
        assert adaptive.discoveries == 1
        assert adaptive.wrapper is not None

    def test_second_batch_uses_wrapper(self, site, thor):
        adaptive = AdaptiveExtractor(thor)
        pages = list(thor.probe(site).pages)
        adaptive.extract(pages)
        fresh = [site.query(w) for w in ("river", "mountain", "bread")]
        adaptive.extract(fresh)
        assert adaptive.discoveries == 1  # no re-discovery needed

    def test_redesign_triggers_rediscovery(self, site, thor):
        adaptive = AdaptiveExtractor(thor)
        adaptive.extract(list(thor.probe(site).pages))
        redesign = SimulatedDeepWebSite(
            SearchableDatabase(site.database.records),
            site.domain,
            SiteTheme.generate("ecommerce", seed=5252),
        )
        fresh_probe = Thor(ThorConfig(seed=52)).probe(redesign)
        pagelets = adaptive.extract(list(fresh_probe.pages))
        # Whether or not drift fired (the redesign may share markup),
        # extraction must still produce the labeled regions.
        gold = {
            p.gold_pagelet_path
            for p in fresh_probe.pages
            if p.gold_pagelet_path
        }
        assert pagelets
        hit = sum(1 for p in pagelets if p.path in gold)
        assert hit / len(pagelets) >= 0.8
