"""Tests for the Page abstraction and Stage-1 probing."""

from __future__ import annotations

import pytest

from repro.config import ProbeConfig
from repro.core.page import Page
from repro.core.probing import DeepWebSource, ProbeResult, QueryProber
from repro.core.wordlists import DICTIONARY_WORDS, generate_nonsense_words
from repro.errors import ProbeError


class TestPage:
    def test_lazy_parse(self):
        page = Page("<html><body><p>x</p></body></html>")
        assert page.tree.root.tag == "html"

    def test_size_is_html_length(self):
        page = Page("<p>x</p>")
        assert page.size == len("<p>x</p>")

    def test_tag_counts_cached(self):
        page = Page("<html><body><p>x</p></body></html>")
        assert page.tag_counts() is page.tag_counts()

    def test_term_counts_stemmed(self):
        page = Page("<html><body>running runs</body></html>")
        assert page.term_counts() == {"run": 2}

    def test_distinct_terms_count(self):
        page = Page("<html><body>apple banana apple</body></html>")
        assert page.distinct_terms_count() == 2

    def test_max_fanout(self):
        page = Page("<html><ul><li>a</li><li>b</li><li>c</li></ul></html>")
        assert page.max_fanout() == 3

    def test_query_attribute(self):
        page = Page("<p>x</p>", query="cat")
        assert page.query == "cat"


class TestWordlists:
    def test_dictionary_substantial(self):
        assert len(DICTIONARY_WORDS) > 400
        assert len(set(DICTIONARY_WORDS)) == len(DICTIONARY_WORDS)

    def test_dictionary_lowercase_alpha(self):
        assert all(w.isalpha() and w == w.lower() for w in DICTIONARY_WORDS)

    def test_nonsense_words_distinct(self):
        words = generate_nonsense_words(20, seed=1)
        assert len(set(words)) == 20

    def test_nonsense_words_have_no_vowels(self):
        for word in generate_nonsense_words(50, seed=2):
            assert not set(word) & set("aeiou")

    def test_nonsense_never_in_dictionary(self):
        words = generate_nonsense_words(100, seed=3)
        assert not set(words) & set(DICTIONARY_WORDS)

    def test_nonsense_deterministic(self):
        assert generate_nonsense_words(5, seed=9) == generate_nonsense_words(5, seed=9)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            generate_nonsense_words(-1)


class _EchoSource:
    """Minimal DeepWebSource returning a tiny page per query."""

    def __init__(self, fail_terms=()):
        self.fail_terms = set(fail_terms)
        self.seen = []

    def query(self, term: str) -> Page:
        self.seen.append(term)
        if term in self.fail_terms:
            raise RuntimeError(f"boom on {term}")
        return Page(f"<html><body>{term}</body></html>",
                    url=f"http://e.com/?q={term}")


class _AlwaysFails:
    def query(self, term: str) -> Page:
        raise RuntimeError("down")


class TestQueryProber:
    def test_default_probe_counts(self):
        prober = QueryProber(seed=0)
        terms = prober.select_terms()
        assert len(terms) == 110  # 100 dictionary + 10 nonsense

    def test_term_mix(self):
        prober = QueryProber(seed=0)
        terms = prober.select_terms()
        dictionary_hits = sum(1 for t in terms if t in DICTIONARY_WORDS)
        assert dictionary_hits == 100

    def test_probe_collects_pages(self):
        source = _EchoSource()
        result = QueryProber(ProbeConfig(5, 2), seed=1).probe(source)
        assert len(result) == 7
        assert len(result.failures) == 0
        assert all(p.query for p in result.pages)

    def test_protocol_satisfied(self):
        assert isinstance(_EchoSource(), DeepWebSource)

    def test_failures_recorded_and_skipped(self):
        prober = QueryProber(ProbeConfig(5, 1), seed=2)
        bad = prober.select_terms()[0]
        source = _EchoSource(fail_terms=[bad])
        result = prober.probe(source)
        assert len(result) == 5
        assert result.failures[0][0] == bad
        # Failure messages carry the exception class, not just str(e).
        assert result.failures[0][1] == f"RuntimeError: boom on {bad}"

    def test_all_failures_raise(self):
        with pytest.raises(ProbeError):
            QueryProber(ProbeConfig(3, 1), seed=0).probe(_AlwaysFails())

    def test_small_dictionary_sampled_with_replacement(self):
        prober = QueryProber(ProbeConfig(10, 0), dictionary=["only", "two"], seed=0)
        terms = prober.select_terms()
        assert len(terms) == 10
        assert set(terms) <= {"only", "two"}

    def test_empty_dictionary_raises(self):
        with pytest.raises(ProbeError):
            QueryProber(dictionary=[])

    def test_deterministic_terms(self):
        a = QueryProber(seed=11).select_terms()
        b = QueryProber(seed=11).select_terms()
        assert a == b

    def test_different_seeds_differ(self):
        assert QueryProber(seed=1).select_terms() != QueryProber(seed=2).select_terms()
