"""Extra coverage: wordlists, seeding interplay, and probe realism."""

from __future__ import annotations

from collections import Counter

from repro.core.probing import QueryProber
from repro.core.wordlists import DICTIONARY_WORDS, generate_nonsense_words
from repro.config import ProbeConfig
from repro.deepweb import make_site


class TestProbeRealism:
    def test_probe_order_is_shuffled(self):
        """Nonsense words must not cluster at the end of the probe
        sequence — a site rate-limiting odd queries would otherwise see
        them as one burst."""
        terms = QueryProber(ProbeConfig(100, 10), seed=5).select_terms()
        nonsense_positions = [
            i for i, t in enumerate(terms) if t not in DICTIONARY_WORDS
        ]
        assert nonsense_positions
        # Not all in the final 10 slots.
        assert min(nonsense_positions) < 90

    def test_probe_terms_unique(self):
        terms = QueryProber(seed=9).select_terms()
        assert len(terms) == len(set(terms))

    def test_class_mix_varies_with_database_size(self):
        """Bigger inventories answer more probes — the knob the
        probing ablation turns."""
        small = make_site("library", seed=3, records=60, error_rate=0.0)
        large = make_site("library", seed=3, records=400, error_rate=0.0)

        def hit_rate(site):
            result = QueryProber(seed=3).probe(site)
            counts = Counter(p.class_label for p in result.pages)
            return 1.0 - counts["nomatch"] / len(result.pages)

        assert hit_rate(large) > hit_rate(small)

    def test_single_rate_tracks_rare_words(self):
        site = make_site("jobs", seed=6, records=200, error_rate=0.0)
        result = QueryProber(seed=6).probe(site)
        counts = Counter(p.class_label for p in result.pages)
        # With 200 unique rare words in a 591-word dictionary, a
        # 100-word probe should find a fair number of single matches.
        assert counts["single"] >= 10


class TestNonsenseWords:
    def test_length_parameter(self):
        words = generate_nonsense_words(5, length=10, seed=0)
        assert all(len(w) == 10 for w in words)

    def test_zero_count(self):
        assert generate_nonsense_words(0, seed=0) == []

    def test_large_batch_all_unique(self):
        words = generate_nonsense_words(500, seed=0)
        assert len(set(words)) == 500
