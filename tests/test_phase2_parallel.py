"""Bitwise-equivalence tests for the parallel, cache-backed Phase 2.

The hard invariant under test: the record-backed pipeline (node-free
candidate snapshots fanned out over processes and round-tripped through
the persistent artifact store) produces *bitwise identical* extraction
output to the plain serial node-backed pipeline — parallel == serial
and warm == cold, on every deep-web domain.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from hypothesis import given, settings, strategies as st

from repro.config import ExecutionConfig, SubtreeConfig
from repro.core.identification import PageletIdentifier
from repro.core.single_page import (
    candidate_record,
    candidate_records_for_cluster,
    candidate_subtrees_for_cluster,
    payload_to_record,
    record_to_payload,
)
from repro.deepweb import generate_corpus
from repro.deepweb.domains import DOMAINS


ALL_DOMAINS = sorted(DOMAINS)  # all seven deep-web domains


def cluster_pages(domain: str, seed: int = 2, n: int = 10):
    """A fresh cluster of probe-result pages from one simulated site."""
    sample = generate_corpus(n_sites=1, seed=seed, domains=[domain])[0]
    return list(sample.pages)[:n]


def result_digest(pages, result) -> str:
    """A canonical digest of everything Phase 2 decided.

    Floats go through ``repr`` (shortest round-trip form), so two
    results digest equal iff they are bitwise equal.
    """
    index_of = {id(page): i for i, page in enumerate(pages)}
    payload = {
        "pagelets": [
            [
                index_of[id(p.page)],
                p.path,
                p.rank,
                repr(p.score),
                list(p.contained_dynamic_paths),
                list(p.contained_static_paths),
                p.html(),
            ]
            for p in result.pagelets
        ],
        "ranked": [
            [r.subtree_set.support, repr(r.similarity), r.is_static]
            for r in result.ranked_sets
        ],
        "scored": [repr(s.score) for s in result.scored_sets],
    }
    blob = json.dumps(payload, ensure_ascii=False, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@pytest.fixture(autouse=True)
def fresh_caches():
    from repro.core.subtree_sets import clear_quad_matrix_memo
    from repro.runtime import clear_artifact_store_registry, clear_space_cache

    def reset():
        clear_space_cache()
        clear_artifact_store_registry()
        clear_quad_matrix_memo()

    reset()
    yield reset
    reset()


def identify(pages, execution=None):
    # The prototype-page draw is seeded: an unseeded identifier would
    # make the two runs we compare diverge for reasons unrelated to
    # the record/cache machinery under test.
    return PageletIdentifier(
        SubtreeConfig(), seed=0, execution=execution
    ).identify(pages)


class TestRecordPipeline:
    def test_record_round_trips_through_json(self):
        pages = cluster_pages("ecommerce", n=3)
        nodes = candidate_subtrees_for_cluster(pages)
        for node in nodes[0]:
            record = candidate_record(node)
            assert payload_to_record(record_to_payload(record)) == record

    def test_records_match_nodes_without_cache(self):
        pages = cluster_pages("music", n=4)
        from_nodes = [
            [candidate_record(n) for n in page_nodes]
            for page_nodes in candidate_subtrees_for_cluster(pages)
        ]
        assert candidate_records_for_cluster(pages) == from_nodes

    def test_malformed_payload_decodes_to_none(self):
        assert payload_to_record({"path": "html"}) is None
        assert payload_to_record("nonsense") is None


class TestBitwiseEquivalence:
    @settings(max_examples=7, deadline=None)
    @given(
        domain=st.sampled_from(ALL_DOMAINS),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_record_path_matches_node_path_on_every_domain(
        self, domain, seed, tmp_path_factory
    ):
        # The node-backed pipeline (no execution config) vs the
        # record-backed one (forced by a cache dir), serial both times.
        pages = cluster_pages(domain, seed=seed, n=8)
        baseline = result_digest(pages, identify(pages))
        root = tmp_path_factory.mktemp(f"store-{domain}-{seed}")
        execution = ExecutionConfig(cache_dir=str(root))
        recorded = result_digest(pages, identify(pages, execution))
        assert recorded == baseline

    @pytest.mark.parametrize("domain", ALL_DOMAINS)
    def test_parallel_matches_serial(self, domain):
        pages = cluster_pages(domain, n=8)
        baseline = result_digest(pages, identify(pages))
        parallel = result_digest(
            pages, identify(pages, ExecutionConfig(n_jobs=2))
        )
        assert parallel == baseline

    def test_warm_equals_cold_with_hits(self, tmp_path, fresh_caches):
        from repro.runtime import artifact_store_for

        execution = ExecutionConfig(cache_dir=str(tmp_path))
        pages = cluster_pages("travel", n=8)
        baseline = result_digest(pages, identify(pages))

        cold = result_digest(pages, identify(pages, execution))
        cold_stats = artifact_store_for(execution).stats()
        assert cold_stats["puts"] > 0
        assert cold_stats["hits"] == 0

        fresh_caches()  # drop every in-memory cache; disk survives
        warm_pages = cluster_pages("travel", n=8)  # unparsed pages
        warm = result_digest(warm_pages, identify(warm_pages, execution))
        warm_stats = artifact_store_for(execution).stats()
        assert warm_stats["hits"] > 0
        assert warm_stats["puts"] == 0

        assert cold == baseline
        assert warm == baseline

    def test_backends_agree_on_extraction_outputs(self, tmp_path):
        # The two compute backends don't promise bitwise-equal
        # similarity *floats* (the ranking sort key is quantized to
        # absorb that), but the extraction outputs — which pagelet,
        # where, at what rank — must coincide, cache or no cache.
        pages = cluster_pages("movies", n=8)
        outputs = {}
        for backend in ("python", "numpy"):
            execution = ExecutionConfig(
                backend=backend, cache_dir=str(tmp_path)
            )
            result = identify(pages, execution)
            outputs[backend] = [
                (p.path, p.rank, p.html()) for p in result.pagelets
            ]
        assert outputs["python"] == outputs["numpy"]

    def test_warm_parallel_matches_too(self, tmp_path, fresh_caches):
        pages = cluster_pages("jobs", n=8)
        baseline = result_digest(pages, identify(pages))
        execution = ExecutionConfig(n_jobs=2, cache_dir=str(tmp_path))
        cold = result_digest(pages, identify(pages, execution))
        fresh_caches()
        warm_pages = cluster_pages("jobs", n=8)
        warm = result_digest(warm_pages, identify(warm_pages, execution))
        assert cold == baseline
        assert warm == baseline


class TestConcurrentWriters:
    def test_two_workers_race_on_the_same_keys(self, tmp_path):
        """Two processes publishing the same artifacts concurrently.

        Every page appears in both workers' chunks, so both processes
        race to publish every key. Last-writer-wins atomic publishes
        mean the store stays readable and the records stay exact.
        """
        from repro.core.single_page import _records_worker
        from repro.runtime import run_chunked

        pages = cluster_pages("library", n=6)
        htmls = [p.html for p in pages]
        expected = candidate_records_for_cluster(pages)
        # Duplicate the whole page list: chunking over 2 workers gives
        # each worker one full copy, racing on every key.
        doubled = run_chunked(
            _records_worker,
            (False, str(tmp_path)),
            htmls + htmls,
            2,
        )
        assert doubled[: len(htmls)] == expected
        assert doubled[len(htmls) :] == expected
        # And a warm read-back from the racing writers' store is exact.
        warm = candidate_records_for_cluster(
            cluster_pages("library", n=6),
            execution=ExecutionConfig(cache_dir=str(tmp_path)),
        )
        assert warm == expected
