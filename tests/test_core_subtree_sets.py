"""Tests for the common-subtree-set machinery (cross-page analysis)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.page import Page
from repro.core.single_page import candidate_subtrees
from repro.core.subtree_sets import (
    CommonSubtreeSet,
    SubtreeCandidate,
    find_common_subtree_sets,
    make_candidate,
    shape_distance,
)
from repro.errors import ExtractionError
from repro.html.metrics import SubtreeShape
from repro.html.paths import TagCodec


def cand(path="html/body/table", fanout=3, depth=2, nodes=10, code="hbt"):
    return SubtreeCandidate(
        page_index=0,
        node=None,  # shape-only tests never touch the node
        shape=SubtreeShape(path, fanout, depth, nodes),
        code_path=code,
    )


class TestShapeDistance:
    def test_identical_zero(self):
        a = cand()
        assert shape_distance(a, a) == 0.0

    def test_range_bounded(self):
        a = cand(code="hbt", fanout=0, depth=1, nodes=1)
        b = cand(code="xyzq", fanout=10, depth=9, nodes=99)
        assert 0.0 <= shape_distance(a, b) <= 1.0

    def test_paper_path_term(self):
        # he vs het: edit distance 1, normalized by 3 (Section 3.2.1).
        a = cand(code="he")
        b = cand(code="het")
        d = shape_distance(a, b, weights=(1.0, 0.0, 0.0, 0.0))
        assert math.isclose(d, 1 / 3)

    def test_fanout_term_full_difference(self):
        a = cand(fanout=0)
        b = cand(fanout=10)
        assert shape_distance(a, b, weights=(0, 1.0, 0, 0)) == 1.0

    def test_fanout_term_same(self):
        a = cand(fanout=5)
        b = cand(fanout=5)
        assert shape_distance(a, b, weights=(0, 1.0, 0, 0)) == 0.0

    def test_zero_zero_feature_is_zero_distance(self):
        a = cand(fanout=0)
        b = cand(fanout=0)
        assert shape_distance(a, b, weights=(0, 1.0, 0, 0)) == 0.0

    def test_weights_linear_combination(self):
        a = cand(code="ab", fanout=1, depth=1, nodes=1)
        b = cand(code="ab", fanout=2, depth=2, nodes=2)
        d = shape_distance(a, b, weights=(0.25, 0.25, 0.25, 0.25))
        assert math.isclose(d, 0.25 * (0.5 + 0.5 + 0.5))

    @given(
        st.integers(0, 30), st.integers(0, 30),
        st.integers(0, 30), st.integers(0, 30),
    )
    def test_symmetric(self, f1, f2, d1, d2):
        a = cand(fanout=f1, depth=d1)
        b = cand(fanout=f2, depth=d2)
        assert math.isclose(shape_distance(a, b), shape_distance(b, a))


def make_pages(texts_per_page):
    """Pages with one table of rows per page, one row per text."""
    pages = []
    for texts in texts_per_page:
        rows = "".join(f"<tr><td>{t}</td><td>extra {t}</td></tr>" for t in texts)
        pages.append(
            Page(
                "<html><body><h2>Results</h2>"
                f"<table>{rows}</table>"
                "<p>footer text</p></body></html>"
            )
        )
    return pages


class TestFindCommonSubtreeSets:
    def test_groups_matching_regions(self):
        pages = make_pages([["a", "b"], ["c", "d"], ["e", "f"]])
        candidates = [candidate_subtrees(p) for p in pages]
        sets = find_common_subtree_sets(candidates, seed=0)
        # The table set must exist with full support.
        table_sets = [
            s for s in sets if s.prototype.shape.path.endswith("table")
        ]
        assert table_sets and table_sets[0].support == 3

    def test_at_most_one_member_per_page(self):
        pages = make_pages([["a", "b"], ["c", "d"]])
        candidates = [candidate_subtrees(p) for p in pages]
        for subtree_set in find_common_subtree_sets(candidates, seed=0):
            pages_seen = list(subtree_set.members)
            assert len(pages_seen) == len(set(pages_seen))

    def test_every_set_contains_prototype(self):
        pages = make_pages([["a"], ["b"]])
        candidates = [candidate_subtrees(p) for p in pages]
        for subtree_set in find_common_subtree_sets(
            candidates, prototype_index=0, seed=0
        ):
            assert subtree_set.prototype.page_index == 0
            assert 0 in subtree_set.members

    def test_max_distance_excludes_mismatches(self):
        pages = make_pages([["a", "b"], ["c", "d"]])
        candidates = [candidate_subtrees(p) for p in pages]
        strict = find_common_subtree_sets(
            candidates, max_assign_distance=0.0, prototype_index=0, seed=0
        )
        # With zero tolerance only exact shape matches join.
        for subtree_set in strict:
            for member in subtree_set.candidates():
                if member.page_index != 0:
                    assert shape_distance(subtree_set.prototype, member) == 0.0

    def test_empty_input_raises(self):
        with pytest.raises(ExtractionError):
            find_common_subtree_sets([])

    def test_all_pages_empty_raises(self):
        with pytest.raises(ExtractionError):
            find_common_subtree_sets([[], []])

    def test_empty_prototype_page_raises(self):
        pages = make_pages([["a"]])
        candidates = [candidate_subtrees(pages[0]), []]
        with pytest.raises(ExtractionError):
            find_common_subtree_sets(candidates, prototype_index=1)

    def test_prototype_defaults_to_non_empty_page(self):
        pages = make_pages([["a"]])
        candidates = [[], candidate_subtrees(pages[0])]
        sets = find_common_subtree_sets(candidates, seed=0)
        assert all(s.prototype.page_index == 1 for s in sets)

    def test_deterministic_with_seed(self):
        pages = make_pages([["a", "b"], ["c"], ["d", "e"]])
        candidates = [candidate_subtrees(p) for p in pages]
        a = find_common_subtree_sets(candidates, seed=4)
        b = find_common_subtree_sets(candidates, seed=4)
        assert [s.prototype.shape.path for s in a] == [
            s.prototype.shape.path for s in b
        ]

    def test_candidates_ordering(self):
        pages = make_pages([["a"], ["b"]])
        candidates = [candidate_subtrees(p) for p in pages]
        sets = find_common_subtree_sets(candidates, prototype_index=0, seed=0)
        for subtree_set in sets:
            indices = [c.page_index for c in subtree_set.candidates()]
            assert indices == sorted(indices)


class TestMakeCandidate:
    def test_shape_and_code(self):
        page = Page("<html><body><table><tr><td>x</td></tr></table></body></html>")
        table = page.tree.root.find("table")
        codec = TagCodec()
        candidate = make_candidate(0, table, codec)
        assert candidate.shape.path == "html/body/table"
        assert len(candidate.code_path) == 3  # h, b, t codes
