"""Unit and property tests for the hardened real-HTTP transport.

The ISSUE-10 contracts under test:

- every scripted hostile-server fault maps to **exactly one** probe
  error class (the dual-inheritance taxonomy), so the probe executor's
  retry machinery sees real network faults as ordinary probe failures;
- circuit-breaker transitions are a pure function of the attempt
  sequence and the seed — two breakers fed the same history agree on
  every transition and cooldown;
- ``Retry-After`` is honored in both RFC 9110 forms and capped at the
  retry policy's backoff ceiling;
- charset resolution walks header -> meta sniff -> default, with
  counted replacement decoding as the last resort;
- real ``robots.txt`` retrieval happens once per site and fails open
  on server trouble but closed on an explicit 403.
"""

from __future__ import annotations

import socket
from datetime import datetime, timezone

import pytest

from hypothesis import given, settings, strategies as st

from repro.config import TransportConfig
from repro.errors import ProbeError
from repro.probe.errors import (
    ERROR,
    MALFORMED,
    SERVER_ERROR,
    THROTTLED,
    TIMEOUT,
    classify_failure,
    retry_after_hint,
)
from repro.probe.retry import RetryPolicy
from repro.transport.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerRegistry,
    CircuitBreaker,
)
from repro.transport.errors import (
    FAULT_CLASSES,
    CircuitOpenError,
    ConnectError,
    DnsError,
    HttpClientError,
    HttpServerError,
    HttpThrottled,
    ReadTimeout,
    RedirectStorm,
    ResponseTooLarge,
    RobotsDisallowed,
    TransportError,
    TruncatedBody,
    fault_of,
)
from repro.transport.http import (
    HttpFetcher,
    decode_body,
    parse_retry_after,
    resolve_charset,
)
from repro.transport.robots import (
    OUTCOME_ALLOW_ALL,
    OUTCOME_FAIL_CLOSED,
    OUTCOME_FAIL_OPEN,
    OUTCOME_PARSED,
)
from repro.transport.testserver import (
    HostileHttpServer,
    ok,
    redirect,
    reset,
    slow,
    status,
    throttle,
    truncate,
    wrong_charset,
)


def fetcher(**overrides) -> HttpFetcher:
    defaults = dict(
        connect_timeout_s=2.0,
        read_timeout_s=0.5,
        breaker_failures=50,  # units shouldn't trip breakers by accident
        obey_robots=False,
    )
    defaults.update(overrides)
    return HttpFetcher(TransportConfig(**defaults), seed=3)


@pytest.fixture(scope="module")
def server():
    with HostileHttpServer() as srv:
        yield srv


class TestRetryAfter:
    def test_delta_seconds(self):
        assert parse_retry_after("7") == 7.0
        assert parse_retry_after("0.5") == 0.5
        assert parse_retry_after("-3") == 0.0

    def test_http_date(self):
        ref = datetime(2026, 1, 1, 12, 0, 0, tzinfo=timezone.utc)
        assert (
            parse_retry_after("Thu, 01 Jan 2026 12:01:00 GMT", now=ref) == 60.0
        )
        # A date in the past clamps to "retry now", not a negative wait.
        assert (
            parse_retry_after("Thu, 01 Jan 2026 11:00:00 GMT", now=ref) == 0.0
        )

    def test_garbage_and_missing(self):
        assert parse_retry_after(None) is None
        assert parse_retry_after("") is None
        assert parse_retry_after("soon") is None

    def test_hint_reads_exception_attribute(self):
        exc = HttpThrottled("http://x/", "HTTP 429", status=429, retry_after=9.0)
        assert retry_after_hint(exc) == 9.0
        assert retry_after_hint(ValueError("no attr")) is None

    def test_policy_honors_hint_capped(self):
        policy = RetryPolicy(max_retries=3, seed=1)
        # The server's request wins over jittered exponential backoff...
        assert policy.backoff_delay("t", 1, retry_after=1.5) == 1.5
        # ...but never past the policy's own ceiling.
        huge = policy.backoff_delay("t", 1, retry_after=1e9)
        assert huge == policy.backoff_cap_s

    @given(seconds=st.floats(min_value=0, max_value=1e6))
    def test_policy_cap_property(self, seconds):
        policy = RetryPolicy(max_retries=2, seed=0)
        delay = policy.backoff_delay("term", 1, retry_after=seconds)
        assert 0.0 <= delay <= policy.backoff_cap_s


class TestCharset:
    def test_header_wins_over_meta(self):
        charset, source = resolve_charset(
            "text/html; charset=ISO-8859-1", b'<meta charset="koi8-r">'
        )
        assert (charset, source) == ("ISO-8859-1", "header")

    def test_meta_sniff_then_default(self):
        assert resolve_charset("text/html", b'<meta charset="koi8-r">') == (
            "koi8-r",
            "meta",
        )
        assert resolve_charset(None, b"<p>plain</p>") == ("utf-8", "default")

    def test_decode_falls_back_with_counted_replacements(self):
        text, n = decode_body("café".encode("latin-1"), "utf-8")
        assert n > 0 and "caf" in text
        # A decodable body under the declared charset costs nothing.
        assert decode_body("café".encode("utf-8"), "utf-8") == ("café", 0)

    def test_unknown_charset_name_falls_back(self):
        text, n = decode_body(b"plain ascii", "no-such-charset")
        assert (text, n) == ("plain ascii", 0)


#: fault label -> (exception class, probe taxonomy kind).
TAXONOMY = {
    "dns": (DnsError, SERVER_ERROR),
    "connect": (ConnectError, TIMEOUT),
    "read_timeout": (ReadTimeout, TIMEOUT),
    "http_4xx": (HttpClientError, MALFORMED),
    "http_5xx": (HttpServerError, SERVER_ERROR),
    "throttled": (HttpThrottled, THROTTLED),
    "truncated": (TruncatedBody, SERVER_ERROR),
    "oversize": (ResponseTooLarge, MALFORMED),
    "redirect_storm": (RedirectStorm, MALFORMED),
    "robots": (RobotsDisallowed, ERROR),
    "circuit_open": (CircuitOpenError, ERROR),
}


class TestTaxonomy:
    @pytest.mark.parametrize("fault", sorted(TAXONOMY))
    def test_every_fault_is_exactly_one_probe_kind(self, fault):
        cls, kind = TAXONOMY[fault]
        exc = cls("http://x/", "detail")
        assert isinstance(exc, ProbeError)
        assert classify_failure(exc) == kind
        assert fault_of(exc) == fault
        assert FAULT_CLASSES[fault] is cls

    def test_non_transport_exceptions_have_no_fault(self):
        assert fault_of(ValueError("nope")) is None

    def test_rejection_faults_never_retry(self):
        policy = RetryPolicy(max_retries=5, seed=0)
        for cls in (RobotsDisallowed, CircuitOpenError):
            kind = classify_failure(cls("http://x/", ""))
            assert not policy.should_retry(kind, 1)


class TestBreaker:
    def test_trip_reject_halfopen_recover(self):
        b = CircuitBreaker("s", failure_threshold=2, cooldown=2, seed=0)
        b.record_failure()
        assert b.state == CLOSED
        b.record_failure()
        assert b.state == OPEN and b.tripped
        rejected = 0
        while b.state == OPEN:
            try:
                b.admit()
            except CircuitOpenError:
                rejected += 1
        # The jittered cooldown is within [cooldown, 2*cooldown].
        assert 2 <= rejected <= 4
        assert b.state == HALF_OPEN
        b.record_success()
        assert b.state == CLOSED and b.consecutive_failures == 0

    def test_halfopen_failure_retrips(self):
        b = CircuitBreaker("s", failure_threshold=1, cooldown=1, seed=0)
        b.record_failure()
        while b.state == OPEN:
            try:
                b.admit()
            except CircuitOpenError:
                pass
        assert b.state == HALF_OPEN
        b.record_failure()
        assert b.state == OPEN and b.trips == 2

    def test_state_roundtrip(self):
        b = CircuitBreaker("s", failure_threshold=1, cooldown=3, seed=9)
        b.record_failure()
        with pytest.raises(CircuitOpenError):
            b.admit()
        clone = CircuitBreaker("s", failure_threshold=1, cooldown=3, seed=9)
        clone.restore(b.to_state())
        assert clone.to_state() == b.to_state()

    def test_registry_quarantine_list(self):
        reg = BreakerRegistry(failure_threshold=1, cooldown=2, seed=4)
        reg.lane("b.example").record_failure()
        reg.lane("a.example").record_success()
        assert reg.tripped_sites() == ("b.example",)
        assert reg.total_trips == 1

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        history=st.lists(st.booleans(), min_size=1, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_transitions_are_seed_deterministic(self, seed, history):
        def replay():
            b = CircuitBreaker("site.example:8080", failure_threshold=3,
                               cooldown=2, seed=seed)
            for succeeded in history:
                try:
                    b.admit()
                except CircuitOpenError:
                    continue  # rejected attempts never reach the network
                if succeeded:
                    b.record_success()
                else:
                    b.record_failure()
            return b

        first, second = replay(), replay()
        assert first.transitions == second.transitions
        assert first.to_state() == second.to_state()


class TestServerFaults:
    """Each hostile-server fault, over a real socket, raises exactly the
    taxonomy class the mapping table promises."""

    def _expect(self, server, path, steps, exc_class, kind, **overrides):
        server.set_script({**server._script, path: steps})
        with fetcher(**overrides) as http:
            with pytest.raises(exc_class) as info:
                http.fetch(server.url(path))
        assert classify_failure(info.value) == kind
        return info.value

    def test_500(self, server):
        self._expect(server, "/f/500", [status(500, "boom")],
                     HttpServerError, SERVER_ERROR)

    def test_429_carries_retry_after(self, server):
        exc = self._expect(server, "/f/429", [throttle(retry_after="3")],
                           HttpThrottled, THROTTLED)
        assert exc.retry_after == 3.0

    def test_503_http_date_retry_after(self, server):
        exc = self._expect(
            server, "/f/503",
            [status(503, "later", retry_after="Thu, 01 Jan 2099 00:00:00 GMT")],
            HttpServerError, SERVER_ERROR,
        )
        assert exc.retry_after is not None and exc.retry_after > 0

    def test_404(self, server):
        self._expect(server, "/f/404", [status(404, "gone")],
                     HttpClientError, MALFORMED)

    def test_truncated_body(self, server):
        self._expect(server, "/f/torn", [truncate("<html>torn</html>")],
                     TruncatedBody, SERVER_ERROR)

    def test_connection_reset(self, server):
        self._expect(server, "/f/rst", [reset()], TruncatedBody, SERVER_ERROR)

    def test_slow_loris_hits_read_timeout(self, server):
        self._expect(server, "/f/slow", [slow(delay_s=30.0)],
                     ReadTimeout, TIMEOUT, read_timeout_s=0.3)

    def test_redirect_loop(self, server):
        server.set_script({
            **server._script,
            "/f/loop-a": [redirect("/f/loop-b")],
            "/f/loop-b": [redirect("/f/loop-a")],
        })
        with fetcher() as http:
            with pytest.raises(RedirectStorm) as info:
                http.fetch(server.url("/f/loop-a"))
        assert classify_failure(info.value) == MALFORMED

    def test_redirect_chain_past_cap(self, server):
        script = dict(server._script)
        for i in range(5):
            script[f"/f/chain-{i}"] = [redirect(f"/f/chain-{i + 1}")]
        script["/f/chain-5"] = [ok("<html>end</html>")]
        server.set_script(script)
        with fetcher(max_redirects=3) as http:
            with pytest.raises(RedirectStorm):
                http.fetch(server.url("/f/chain-0"))
        # A generous cap follows the same chain to the end.
        with fetcher(max_redirects=8) as http:
            assert "end" in http.fetch(server.url("/f/chain-0"))

    def test_oversize_body(self, server):
        big = "<html>" + "x" * 10_000 + "</html>"
        self._expect(server, "/f/big", [ok(big)],
                     ResponseTooLarge, MALFORMED, max_response_bytes=1024)

    def test_wrong_charset_succeeds_with_counted_damage(self, server):
        server.set_script({
            **server._script,
            "/f/moji": [wrong_charset("<p>café crème</p>")],
        })
        with fetcher() as http:
            response = http.fetch_response(server.url("/f/moji"))
        assert response.replacements > 0
        assert response.charset_source.endswith("+replace")
        assert http.stats.get("replacement_decodes") == 1

    def test_transient_then_ok_is_one_retry_away(self, server):
        server.set_script({
            **server._script,
            "/f/flaky": [status(500, "once"), ok("<html>fine</html>")],
        })
        with fetcher() as http:
            with pytest.raises(HttpServerError):
                http.fetch(server.url("/f/flaky"))
            assert "fine" in http.fetch(server.url("/f/flaky"))

    def test_dns_failure(self):
        with fetcher() as http:
            with pytest.raises(DnsError) as info:
                http.fetch("http://no-such-host.invalid/")
        assert classify_failure(info.value) == SERVER_ERROR

    def test_connection_refused(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here now
        with fetcher() as http:
            with pytest.raises(ConnectError) as info:
                http.fetch(f"http://127.0.0.1:{port}/")
        assert classify_failure(info.value) == TIMEOUT

    def test_breaker_trips_and_rejects_without_network(self, server):
        server.set_script({**server._script, "/f/dead": [status(503, "dead")]})
        with fetcher(breaker_failures=2, breaker_cooldown=2) as http:
            for _ in range(2):
                with pytest.raises(HttpServerError):
                    http.fetch(server.url("/f/dead"))
            served = server.requests["/f/dead"]
            with pytest.raises(CircuitOpenError):
                http.fetch(server.url("/f/dead"))
            # The rejection never reached the socket.
            assert server.requests["/f/dead"] == served
            assert http.breakers.tripped_sites() == (
                f"{server.host}:{server.port}",
            )


#: Scripted-fault menu for the property test: label -> (steps builder,
#: expected exception class). Every entry must raise exactly this class.
_FAULT_MENU = {
    "500": (lambda: status(500, "err"), HttpServerError),
    "429": (lambda: throttle(retry_after="1"), HttpThrottled),
    "404": (lambda: status(404, "missing"), HttpClientError),
    "truncate": (lambda: truncate("<html>half</html>"), TruncatedBody),
    "reset": (lambda: reset(), TruncatedBody),
}


class TestFaultSequenceProperty:
    _counter = 0

    @given(sequence=st.lists(st.sampled_from(sorted(_FAULT_MENU)),
                             min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_each_scripted_fault_maps_to_exactly_one_class(self, sequence):
        # One fresh path per example: per-path scripting means the
        # outcome depends only on this path's own request count.
        TestFaultSequenceProperty._counter += 1
        path = f"/prop/{TestFaultSequenceProperty._counter}"
        server = type(self)._server
        steps = [_FAULT_MENU[label][0]() for label in sequence]
        steps.append(ok("<html>recovered</html>"))
        server.set_script({**server._script, path: steps})
        # A fresh fetcher per step keeps every request on a fresh
        # connection: a reset on a *reused* keep-alive would instead be
        # absorbed by the transport's one free stale-connection retry
        # (by design), consuming an extra script step.
        for label in sequence:
            expected = _FAULT_MENU[label][1]
            with fetcher() as http:
                with pytest.raises(TransportError) as info:
                    http.fetch(server.url(path))
            assert type(info.value) is expected
            others = [c for c in TAXONOMY.values()
                      if c[0] is not expected and
                      not issubclass(expected, c[0])]
            assert not any(isinstance(info.value, c) for c, _ in others)
        with fetcher() as http:
            assert "recovered" in http.fetch(server.url(path))

    @classmethod
    def setup_class(cls):
        cls._server = HostileHttpServer().start()

    @classmethod
    def teardown_class(cls):
        cls._server.stop()


class TestRobots:
    def _server_with_robots(self, robots_steps):
        srv = HostileHttpServer({
            "/robots.txt": robots_steps,
            "/open": [ok("<html>open</html>")],
            "/private/x": [ok("<html>hidden</html>")],
        })
        return srv.start()

    def test_parsed_rules_enforced_and_fetched_once(self):
        srv = self._server_with_robots(
            [ok("User-agent: *\nDisallow: /private/\n",
                content_type="text/plain")]
        )
        try:
            with fetcher(obey_robots=True) as http:
                site = f"{srv.host}:{srv.port}"
                assert "open" in http.fetch(srv.url("/open"))
                with pytest.raises(RobotsDisallowed):
                    http.fetch(srv.url("/private/x"))
                http.fetch(srv.url("/open"))
                assert srv.requests["/robots.txt"] == 1  # once per site
                assert srv.requests.get("/private/x") is None
                assert http.robots.outcome(site) == OUTCOME_PARSED
        finally:
            srv.stop()

    def test_403_fails_closed_on_whole_host(self):
        srv = self._server_with_robots([status(403, "go away")])
        try:
            with fetcher(obey_robots=True) as http:
                with pytest.raises(RobotsDisallowed):
                    http.fetch(srv.url("/open"))
                site = f"{srv.host}:{srv.port}"
                assert http.robots.outcome(site) == OUTCOME_FAIL_CLOSED
        finally:
            srv.stop()

    def test_404_allows_all(self):
        srv = self._server_with_robots([status(404, "none")])
        try:
            with fetcher(obey_robots=True) as http:
                assert "hidden" in http.fetch(srv.url("/private/x"))
                site = f"{srv.host}:{srv.port}"
                assert http.robots.outcome(site) == OUTCOME_ALLOW_ALL
        finally:
            srv.stop()

    def test_5xx_fails_open(self):
        srv = self._server_with_robots([status(500, "robots broken")])
        try:
            with fetcher(obey_robots=True) as http:
                assert "open" in http.fetch(srv.url("/open"))
                site = f"{srv.host}:{srv.port}"
                assert http.robots.outcome(site) == OUTCOME_FAIL_OPEN
        finally:
            srv.stop()


class TestPoolAndResponse:
    def test_keepalive_reuse_and_final_url(self, server):
        server.set_script({
            **server._script,
            "/pool/a": [ok("<html>a</html>")],
            "/pool/b": [ok("<html>b</html>")],
            "/pool/hop": [redirect("/pool/a")],
        })
        with fetcher() as http:
            http.fetch(server.url("/pool/a"))
            http.fetch(server.url("/pool/b"))
            assert http.stats.get("connections_reused") >= 1
            response = http.fetch_response(server.url("/pool/hop"))
            assert response.redirects == 1
            assert response.final_url.endswith("/pool/a")

    def test_stale_keepalive_gets_one_free_retry(self, server):
        server.set_script({
            **server._script,
            "/pool/stale": [ok("<html>one</html>"), reset(),
                            ok("<html>two</html>")],
        })
        with fetcher() as http:
            assert "one" in http.fetch(server.url("/pool/stale"))
            # The pooled keep-alive dies (RST) on reuse; the transport
            # retries once on a guaranteed-fresh connection instead of
            # surfacing a fault for a connection the server was always
            # entitled to close.
            assert "two" in http.fetch(server.url("/pool/stale"))
            assert http.stats.get("stale_retries") == 1
