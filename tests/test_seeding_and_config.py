"""Tests for seeding discipline and the configuration surface."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    DEFAULT_CONFIG,
    WATCHDOG_STAGES,
    ClusteringConfig,
    ExecutionConfig,
    FleetConfig,
    ProbeConfig,
    RunOptions,
    StageTimeouts,
    SubtreeConfig,
    ThorConfig,
    resolve_n_jobs,
    resolve_stage_timeout,
)
from repro.errors import ConfigError
from repro.seeding import namespaced_rng


class TestNamespacedRng:
    def test_same_namespace_same_stream(self):
        a = namespaced_rng("x", 1)
        b = namespaced_rng("x", 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_namespaces_differ(self):
        a = namespaced_rng("x", 1).random()
        b = namespaced_rng("y", 1).random()
        assert a != b

    def test_different_seeds_differ(self):
        a = namespaced_rng("x", 1).random()
        b = namespaced_rng("x", 2).random()
        assert a != b

    def test_none_seed_gives_entropy(self):
        # Two unseeded generators almost surely differ.
        a = namespaced_rng("x", None).random()
        b = namespaced_rng("x", None).random()
        assert a != b

    def test_decorrelates_sample_and_shuffle(self):
        # The original bug: a prober sampling and a generator shuffling
        # the same list from the same integer seed produce pathological
        # anti-correlation. Namespacing must break the coupling.
        words = [f"w{i}" for i in range(200)]
        pool = list(words)
        namespaced_rng("records:test", 7).shuffle(pool)
        chosen_by_generator = set(pool[:50])
        sampled_by_prober = set(namespaced_rng("prober", 7).sample(words, 50))
        overlap = len(chosen_by_generator & sampled_by_prober)
        # Expected overlap ~12.5; systematic avoidance gave ~0.
        assert overlap >= 3


class TestConfigDataclasses:
    def test_all_frozen(self):
        for config in (
            ThorConfig(),
            ClusteringConfig(),
            SubtreeConfig(),
            ProbeConfig(),
        ):
            field = dataclasses.fields(config)[0].name
            with pytest.raises(dataclasses.FrozenInstanceError):
                setattr(config, field, None)

    def test_default_config_is_paper_faithful(self):
        assert DEFAULT_CONFIG.probing.dictionary_queries == 100
        assert DEFAULT_CONFIG.probing.nonsense_queries == 10
        assert DEFAULT_CONFIG.clustering.configuration == "ttag"
        assert DEFAULT_CONFIG.clustering.restarts == 10
        assert DEFAULT_CONFIG.clustering.top_m == 2
        assert DEFAULT_CONFIG.subtrees.static_similarity_threshold == 0.5
        assert sum(DEFAULT_CONFIG.subtrees.distance_weights) == 1.0

    def test_replace_composes(self):
        config = dataclasses.replace(
            ThorConfig(),
            clustering=dataclasses.replace(ClusteringConfig(), k=3),
        )
        assert config.clustering.k == 3
        assert config.subtrees == SubtreeConfig()

    def test_ranking_weights_sum_to_one(self):
        assert abs(sum(ClusteringConfig().ranking_weights) - 1.0) < 1e-9

    def test_seed_defaults_to_none(self):
        assert ThorConfig().seed is None


class TestExecutionConfig:
    def test_defaults_are_serial_cached(self):
        execution = ExecutionConfig()
        assert execution.backend is None
        assert execution.n_jobs == 1
        assert execution.cache == "on"

    def test_rejects_negative_n_jobs(self):
        with pytest.raises(ValueError):
            ExecutionConfig(n_jobs=-1)

    def test_rejects_unknown_cache_policy(self):
        with pytest.raises(ValueError):
            ExecutionConfig(cache="sometimes")

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ExecutionConfig().n_jobs = 4

    def test_thor_config_carries_execution(self):
        config = ThorConfig(execution=ExecutionConfig(backend="python", n_jobs=2))
        assert config.resolved_execution().backend == "python"
        assert config.resolved_execution().n_jobs == 2


class TestResolveNJobs:
    def test_explicit_wins_over_execution(self):
        assert resolve_n_jobs(ExecutionConfig(n_jobs=4), n_jobs=2) == 2

    def test_execution_supplies_n_jobs(self):
        assert resolve_n_jobs(ExecutionConfig(n_jobs=4)) == 4

    def test_default_is_serial(self):
        assert resolve_n_jobs() == 1
        assert resolve_n_jobs("numpy") == 1

    def test_zero_means_all_cores(self):
        assert resolve_n_jobs(n_jobs=0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_n_jobs(n_jobs=-2)


class TestRemovedBackendField:
    """The deprecated per-stage ``backend`` fields are gone: setting
    them is a typed :class:`ConfigError` naming the replacement."""

    def test_clustering_backend_raises(self):
        with pytest.raises(ConfigError, match="ClusteringConfig.backend"):
            ClusteringConfig(backend="python")

    def test_subtree_backend_raises(self):
        with pytest.raises(ConfigError, match="SubtreeConfig.backend"):
            SubtreeConfig(backend="python")

    def test_error_names_the_replacement(self):
        with pytest.raises(ConfigError, match="ExecutionConfig"):
            ClusteringConfig(backend="numpy")

    def test_unset_field_stays_silent(self, recwarn):
        assert ClusteringConfig().backend is None
        assert SubtreeConfig().backend is None
        assert not recwarn.list

    def test_resolved_execution_passthrough(self):
        execution = ExecutionConfig(backend="python", n_jobs=2)
        assert ThorConfig(execution=execution).resolved_execution() is execution

    def test_config_error_is_thor_error(self):
        from repro.errors import ThorError

        assert issubclass(ConfigError, ThorError)


class TestStageTimeouts:
    def test_per_stage_override_wins(self):
        execution = ExecutionConfig(
            stage_timeout_s=30.0,
            stage_timeouts=StageTimeouts(cluster=5.0),
        )
        assert resolve_stage_timeout(execution, "cluster") == 5.0
        assert resolve_stage_timeout(execution, "probe") == 30.0

    def test_none_execution_means_no_deadline(self):
        for stage in WATCHDOG_STAGES:
            assert resolve_stage_timeout(None, stage) is None

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown watchdog stage"):
            resolve_stage_timeout(ExecutionConfig(), "upload")

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError):
            StageTimeouts(probe=0.0)
        with pytest.raises(ValueError):
            StageTimeouts(identify=-1.0)


class TestRunOptionsAndFleetConfig:
    def test_run_options_defaults(self):
        options = RunOptions()
        assert options.run_id is None
        assert options.resume is False
        assert options.streaming is False
        assert options.fault_plan is None

    def test_run_options_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            RunOptions().resume = True

    def test_on_stage_excluded_from_equality(self):
        assert RunOptions(on_stage=print) == RunOptions()

    def test_fleet_config_defaults_on_thor_config(self):
        assert ThorConfig().fleet == FleetConfig()
        assert FleetConfig().site_jobs == 1

    def test_fleet_config_validates(self):
        with pytest.raises(ValueError):
            FleetConfig(site_jobs=-1)
        with pytest.raises(ValueError):
            FleetConfig(max_sites_per_run=0)
