"""Tests for seeding discipline and the configuration surface."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    DEFAULT_CONFIG,
    ClusteringConfig,
    ProbeConfig,
    SubtreeConfig,
    ThorConfig,
)
from repro.seeding import namespaced_rng


class TestNamespacedRng:
    def test_same_namespace_same_stream(self):
        a = namespaced_rng("x", 1)
        b = namespaced_rng("x", 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_namespaces_differ(self):
        a = namespaced_rng("x", 1).random()
        b = namespaced_rng("y", 1).random()
        assert a != b

    def test_different_seeds_differ(self):
        a = namespaced_rng("x", 1).random()
        b = namespaced_rng("x", 2).random()
        assert a != b

    def test_none_seed_gives_entropy(self):
        # Two unseeded generators almost surely differ.
        a = namespaced_rng("x", None).random()
        b = namespaced_rng("x", None).random()
        assert a != b

    def test_decorrelates_sample_and_shuffle(self):
        # The original bug: a prober sampling and a generator shuffling
        # the same list from the same integer seed produce pathological
        # anti-correlation. Namespacing must break the coupling.
        words = [f"w{i}" for i in range(200)]
        pool = list(words)
        namespaced_rng("records:test", 7).shuffle(pool)
        chosen_by_generator = set(pool[:50])
        sampled_by_prober = set(namespaced_rng("prober", 7).sample(words, 50))
        overlap = len(chosen_by_generator & sampled_by_prober)
        # Expected overlap ~12.5; systematic avoidance gave ~0.
        assert overlap >= 3


class TestConfigDataclasses:
    def test_all_frozen(self):
        for config in (
            ThorConfig(),
            ClusteringConfig(),
            SubtreeConfig(),
            ProbeConfig(),
        ):
            field = dataclasses.fields(config)[0].name
            with pytest.raises(dataclasses.FrozenInstanceError):
                setattr(config, field, None)

    def test_default_config_is_paper_faithful(self):
        assert DEFAULT_CONFIG.probing.dictionary_queries == 100
        assert DEFAULT_CONFIG.probing.nonsense_queries == 10
        assert DEFAULT_CONFIG.clustering.configuration == "ttag"
        assert DEFAULT_CONFIG.clustering.restarts == 10
        assert DEFAULT_CONFIG.clustering.top_m == 2
        assert DEFAULT_CONFIG.subtrees.static_similarity_threshold == 0.5
        assert sum(DEFAULT_CONFIG.subtrees.distance_weights) == 1.0

    def test_replace_composes(self):
        config = dataclasses.replace(
            ThorConfig(),
            clustering=dataclasses.replace(ClusteringConfig(), k=3),
        )
        assert config.clustering.k == 3
        assert config.subtrees == SubtreeConfig()

    def test_ranking_weights_sum_to_one(self):
        assert abs(sum(ClusteringConfig().ranking_weights) - 1.0) < 1e-9

    def test_seed_defaults_to_none(self):
        assert ThorConfig().seed is None
