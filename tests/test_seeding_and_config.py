"""Tests for seeding discipline and the configuration surface."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    DEFAULT_CONFIG,
    ClusteringConfig,
    ExecutionConfig,
    ProbeConfig,
    SubtreeConfig,
    ThorConfig,
    execution_from_legacy,
    resolve_n_jobs,
)
from repro.seeding import namespaced_rng


class TestNamespacedRng:
    def test_same_namespace_same_stream(self):
        a = namespaced_rng("x", 1)
        b = namespaced_rng("x", 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_namespaces_differ(self):
        a = namespaced_rng("x", 1).random()
        b = namespaced_rng("y", 1).random()
        assert a != b

    def test_different_seeds_differ(self):
        a = namespaced_rng("x", 1).random()
        b = namespaced_rng("x", 2).random()
        assert a != b

    def test_none_seed_gives_entropy(self):
        # Two unseeded generators almost surely differ.
        a = namespaced_rng("x", None).random()
        b = namespaced_rng("x", None).random()
        assert a != b

    def test_decorrelates_sample_and_shuffle(self):
        # The original bug: a prober sampling and a generator shuffling
        # the same list from the same integer seed produce pathological
        # anti-correlation. Namespacing must break the coupling.
        words = [f"w{i}" for i in range(200)]
        pool = list(words)
        namespaced_rng("records:test", 7).shuffle(pool)
        chosen_by_generator = set(pool[:50])
        sampled_by_prober = set(namespaced_rng("prober", 7).sample(words, 50))
        overlap = len(chosen_by_generator & sampled_by_prober)
        # Expected overlap ~12.5; systematic avoidance gave ~0.
        assert overlap >= 3


class TestConfigDataclasses:
    def test_all_frozen(self):
        for config in (
            ThorConfig(),
            ClusteringConfig(),
            SubtreeConfig(),
            ProbeConfig(),
        ):
            field = dataclasses.fields(config)[0].name
            with pytest.raises(dataclasses.FrozenInstanceError):
                setattr(config, field, None)

    def test_default_config_is_paper_faithful(self):
        assert DEFAULT_CONFIG.probing.dictionary_queries == 100
        assert DEFAULT_CONFIG.probing.nonsense_queries == 10
        assert DEFAULT_CONFIG.clustering.configuration == "ttag"
        assert DEFAULT_CONFIG.clustering.restarts == 10
        assert DEFAULT_CONFIG.clustering.top_m == 2
        assert DEFAULT_CONFIG.subtrees.static_similarity_threshold == 0.5
        assert sum(DEFAULT_CONFIG.subtrees.distance_weights) == 1.0

    def test_replace_composes(self):
        config = dataclasses.replace(
            ThorConfig(),
            clustering=dataclasses.replace(ClusteringConfig(), k=3),
        )
        assert config.clustering.k == 3
        assert config.subtrees == SubtreeConfig()

    def test_ranking_weights_sum_to_one(self):
        assert abs(sum(ClusteringConfig().ranking_weights) - 1.0) < 1e-9

    def test_seed_defaults_to_none(self):
        assert ThorConfig().seed is None


class TestExecutionConfig:
    def test_defaults_are_serial_cached(self):
        execution = ExecutionConfig()
        assert execution.backend is None
        assert execution.n_jobs == 1
        assert execution.cache == "on"

    def test_rejects_negative_n_jobs(self):
        with pytest.raises(ValueError):
            ExecutionConfig(n_jobs=-1)

    def test_rejects_unknown_cache_policy(self):
        with pytest.raises(ValueError):
            ExecutionConfig(cache="sometimes")

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ExecutionConfig().n_jobs = 4

    def test_thor_config_carries_execution(self):
        config = ThorConfig(execution=ExecutionConfig(backend="python", n_jobs=2))
        assert config.resolved_execution().backend == "python"
        assert config.resolved_execution().n_jobs == 2


class TestResolveNJobs:
    def test_explicit_wins_over_execution(self):
        assert resolve_n_jobs(ExecutionConfig(n_jobs=4), n_jobs=2) == 2

    def test_execution_supplies_n_jobs(self):
        assert resolve_n_jobs(ExecutionConfig(n_jobs=4)) == 4

    def test_default_is_serial(self):
        assert resolve_n_jobs() == 1
        assert resolve_n_jobs("numpy") == 1

    def test_zero_means_all_cores(self):
        assert resolve_n_jobs(n_jobs=0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_n_jobs(n_jobs=-2)


class TestLegacyBackendDeprecation:
    def test_resolved_execution_warns_on_legacy_fields(self):
        config = ThorConfig(
            clustering=ClusteringConfig(backend="python"),
        )
        with pytest.warns(DeprecationWarning, match="deprecated"):
            execution = config.resolved_execution()
        assert execution.backend == "python"

    def test_explicit_execution_backend_outranks_legacy(self):
        config = ThorConfig(
            clustering=ClusteringConfig(backend="python"),
            execution=ExecutionConfig(backend="numpy"),
        )
        with pytest.warns(DeprecationWarning):
            execution = config.resolved_execution()
        assert execution.backend == "numpy"

    def test_no_warning_without_legacy_fields(self, recwarn):
        execution = ThorConfig().resolved_execution()
        assert execution == ExecutionConfig()
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_execution_from_legacy_warns(self):
        with pytest.warns(DeprecationWarning, match="ClusteringConfig.backend"):
            execution = execution_from_legacy(
                None, "python", "ClusteringConfig.backend"
            )
        assert execution.backend == "python"

    def test_execution_from_legacy_explicit_wins_silently(self, recwarn):
        explicit = ExecutionConfig(backend="numpy")
        assert (
            execution_from_legacy(explicit, "python", "SubtreeConfig.backend")
            is explicit
        )
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_stage_drivers_accept_legacy_field_with_warning(self):
        from repro.core.page_clustering import PageClusterer

        with pytest.warns(DeprecationWarning):
            clusterer = PageClusterer(ClusteringConfig(backend="python"))
        assert clusterer.execution.backend == "python"
