"""Tests for subtree-set content ranking and QA-Pagelet selection."""

from __future__ import annotations

import math

import pytest

from repro.config import SubtreeConfig
from repro.core.page import Page
from repro.core.single_page import candidate_subtrees_for_cluster
from repro.core.subtree_ranking import (
    dynamic_sets,
    intra_set_similarity,
    rank_subtree_sets,
    set_content_vectors,
)
from repro.core.subtree_sets import find_common_subtree_sets
from repro.core.selection import score_sets


def build_sets(pages, **kwargs):
    candidates = candidate_subtrees_for_cluster(pages)
    return find_common_subtree_sets(candidates, seed=0, **kwargs)


def results_pages(row_texts):
    """Pages with a static header/footer and varying result rows."""
    pages = []
    for texts in row_texts:
        rows = "".join(
            f"<tr><td>{t} one</td><td>{t} two</td></tr>" for t in texts
        )
        pages.append(
            Page(
                "<html><body>"
                "<div>Welcome to ExampleHub navigation links here</div>"
                f"<table>{rows}</table>"
                "<div>Copyright 2003 ExampleHub terms of service</div>"
                "</body></html>"
            )
        )
    return pages


PAGES = results_pages(
    [["alpha", "beta"], ["gamma", "delta"], ["epsilon", "zeta"]]
)


class TestIntraSetSimilarity:
    def test_static_set_scores_high(self):
        sets = build_sets(PAGES)
        static = [
            s for s in sets
            if s.prototype.shape.path.endswith("div[2]")
        ]
        assert static
        assert intra_set_similarity(static[0]) > 0.9

    def test_dynamic_set_scores_low(self):
        sets = build_sets(PAGES)
        tables = [
            s for s in sets if s.prototype.shape.path.endswith("table")
        ]
        assert tables
        assert intra_set_similarity(tables[0]) < 0.5

    def test_singleton_set_is_one(self):
        sets = build_sets([PAGES[0]], prototype_index=0)
        assert all(intra_set_similarity(s) == 1.0 for s in sets)

    def test_matches_naive_pairwise(self):
        # The closed-form computation must agree with the naive O(n²).
        from repro.vsm.similarity import cosine_similarity

        sets = build_sets(PAGES)
        for subtree_set in sets[:5]:
            vectors = set_content_vectors(subtree_set)
            n = len(vectors)
            if n <= 1:
                continue
            naive = sum(
                cosine_similarity(vectors[i], vectors[j])
                for i in range(n)
                for j in range(i + 1, n)
            ) / (n * (n - 1) / 2)
            fast = intra_set_similarity(subtree_set)
            assert math.isclose(naive, fast, abs_tol=1e-9)

    def test_raw_vs_tfidf_modes_differ(self):
        sets = build_sets(PAGES)
        table = next(
            s for s in sets if s.prototype.shape.path.endswith("table")
        )
        tfidf = intra_set_similarity(table, use_tfidf=True)
        raw = intra_set_similarity(table, use_tfidf=False)
        # Rows share the static "one"/"two" cell suffixes; raw TF sees
        # that shared content, TFIDF discounts it.
        assert raw > tfidf


class TestRankSubtreeSets:
    def test_sorted_ascending(self):
        ranked = rank_subtree_sets(build_sets(PAGES), n_pages=3)
        sims = [r.similarity for r in ranked]
        assert sims == sorted(sims)

    def test_order_identical_across_backends(self):
        # Backends score similarities to ulp-level differences; the
        # quantized sort key must keep the ranked order (and hence
        # everything downstream) backend-independent.
        pytest.importorskip("numpy")
        sets = build_sets(PAGES)
        by_backend = {
            backend: [
                id(r.subtree_set)
                for r in rank_subtree_sets(sets, n_pages=3, backend=backend)
            ]
            for backend in ("python", "numpy")
        }
        assert by_backend["python"] == by_backend["numpy"]

    def test_static_flagging(self):
        ranked = rank_subtree_sets(
            build_sets(PAGES), n_pages=3, static_similarity_threshold=0.5
        )
        for entry in ranked:
            assert entry.is_static == (entry.similarity > 0.5)

    def test_min_support_filters(self):
        ranked = rank_subtree_sets(
            build_sets(PAGES), n_pages=3, min_support=1.0
        )
        assert all(r.subtree_set.support == 3 for r in ranked)

    def test_dynamic_sets_helper(self):
        ranked = rank_subtree_sets(build_sets(PAGES), n_pages=3)
        dynamic = dynamic_sets(ranked)
        assert dynamic
        assert all(not d.is_static for d in dynamic)
        # The results table must be among the dynamic sets.
        assert any(
            d.subtree_set.prototype.shape.path.endswith("table") for d in dynamic
        )


class TestSelection:
    def test_selects_results_container(self):
        ranked = rank_subtree_sets(build_sets(PAGES), n_pages=3)
        scored = score_sets(dynamic_sets(ranked))
        winner = scored[0].ranked.subtree_set.prototype.shape.path
        assert winner.endswith("table")

    def test_winner_flagged_on_path(self):
        ranked = rank_subtree_sets(build_sets(PAGES), n_pages=3)
        scored = score_sets(dynamic_sets(ranked))
        assert scored[0].on_path

    def test_empty_input(self):
        assert score_sets([]) == []

    def test_no_containment_falls_back_to_largest(self):
        # Candidates directly under the (excluded) root: no candidate
        # contains another, so the largest dynamic region must win.
        pages = [
            Page(f"<html><p>{w} text <b>content</b> here</p><i>{w}</i></html>")
            for w in ("alpha", "beta", "gamma")
        ]
        ranked = rank_subtree_sets(build_sets(pages), n_pages=3)
        scored = score_sets(dynamic_sets(ranked))
        assert scored
        # The <p> subtree is larger than the <i> subtree.
        top_path = scored[0].ranked.subtree_set.prototype.shape.path
        assert "p" in top_path.rsplit("/", 1)[-1]
