"""Tests for the text substrate: tokenizer, Porter stemmer, terms."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.text import extract_terms, porter_stem, tokenize_words
from repro.text.stopwords import STOPWORDS, is_stopword
from repro.text.terms import TermExtractor


class TestTokenizeWords:
    def test_basic_split(self):
        assert tokenize_words("hello world") == ["hello", "world"]

    def test_lowercasing(self):
        assert tokenize_words("Hello WORLD") == ["hello", "world"]

    def test_lowercase_off(self):
        assert tokenize_words("Hello", lowercase=False) == ["Hello"]

    def test_punctuation_stripped(self):
        assert tokenize_words("one, two; three!") == ["one", "two", "three"]

    def test_numbers_kept(self):
        assert tokenize_words("price 1999 only") == ["price", "1999", "only"]

    def test_internal_apostrophe(self):
        assert tokenize_words("o'brien's") == ["o'brien's"]

    def test_internal_hyphen(self):
        assert tokenize_words("blu-ray disc") == ["blu-ray", "disc"]

    def test_leading_trailing_apostrophe_dropped(self):
        assert tokenize_words("'quoted'") == ["quoted"]

    def test_empty(self):
        assert tokenize_words("") == []
        assert tokenize_words("   ,;!  ") == []

    @given(st.text(max_size=200))
    def test_never_raises_and_tokens_nonempty(self, text):
        for token in tokenize_words(text):
            assert token
            assert token == token.lower()


# Canonical (word, stem) pairs from Porter's 1980 paper.
PORTER_CASES = [
    ("caresses", "caress"), ("ponies", "poni"), ("ties", "ti"),
    ("caress", "caress"), ("cats", "cat"), ("feed", "feed"),
    ("agreed", "agre"), ("plastered", "plaster"), ("bled", "bled"),
    ("motoring", "motor"), ("sing", "sing"), ("conflated", "conflat"),
    ("troubled", "troubl"), ("sized", "size"), ("hopping", "hop"),
    ("tanned", "tan"), ("falling", "fall"), ("hissing", "hiss"),
    ("fizzed", "fizz"), ("failing", "fail"), ("filing", "file"),
    ("happy", "happi"), ("sky", "sky"), ("relational", "relat"),
    ("conditional", "condit"), ("rational", "ration"),
    ("valenci", "valenc"), ("hesitanci", "hesit"),
    ("digitizer", "digit"), ("conformabli", "conform"),
    ("radicalli", "radic"), ("differentli", "differ"),
    ("vileli", "vile"), ("analogousli", "analog"),
    ("vietnamization", "vietnam"), ("predication", "predic"),
    ("operator", "oper"), ("feudalism", "feudal"),
    ("decisiveness", "decis"), ("hopefulness", "hope"),
    ("callousness", "callous"), ("formaliti", "formal"),
    ("sensitiviti", "sensit"), ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"), ("formative", "form"),
    ("formalize", "formal"), ("electriciti", "electr"),
    ("electrical", "electr"), ("hopeful", "hope"),
    ("goodness", "good"), ("revival", "reviv"),
    ("allowance", "allow"), ("inference", "infer"),
    ("airliner", "airlin"), ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"), ("defensible", "defens"),
    ("irritant", "irrit"), ("replacement", "replac"),
    ("adjustment", "adjust"), ("dependent", "depend"),
    ("adoption", "adopt"), ("communism", "commun"),
    ("activate", "activ"), ("angulariti", "angular"),
    ("homologous", "homolog"), ("effective", "effect"),
    ("bowdlerize", "bowdler"), ("probate", "probat"),
    ("rate", "rate"), ("cease", "ceas"),
    ("controll", "control"), ("roll", "roll"),
]


class TestPorterStemmer:
    @pytest.mark.parametrize("word,stem", PORTER_CASES)
    def test_canonical_cases(self, word, stem):
        assert porter_stem(word) == stem

    def test_short_words_untouched(self):
        assert porter_stem("as") == "as"
        assert porter_stem("a") == "a"
        assert porter_stem("") == ""

    def test_same_stem_for_inflections(self):
        stems = {porter_stem(w) for w in ("connect", "connected", "connecting",
                                          "connection", "connections")}
        assert stems == {"connect"}

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=20))
    def test_idempotent_enough(self, word):
        # The stem never grows and never raises.
        stem = porter_stem(word)
        assert len(stem) <= len(word)

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=3, max_size=20))
    def test_stem_nonempty_for_long_words(self, word):
        assert porter_stem(word)


class TestStopwords:
    def test_common_stopwords_present(self):
        for word in ("the", "and", "of", "is"):
            assert is_stopword(word)

    def test_content_words_absent(self):
        for word in ("camera", "price", "elvis"):
            assert not is_stopword(word)

    def test_all_lowercase(self):
        assert all(w == w.lower() for w in STOPWORDS)


class TestTermExtractor:
    def test_default_pipeline_stems(self):
        assert extract_terms("Connected connections") == ["connect", "connect"]

    def test_counts(self):
        counts = TermExtractor().extract_counts("cat cats dog")
        assert counts == {"cat": 2, "dog": 1}

    def test_stopword_removal_opt_in(self):
        with_stops = TermExtractor().extract("the cat")
        without = TermExtractor(remove_stopwords=True).extract("the cat")
        assert "the" in with_stops
        assert without == ["cat"]

    def test_no_stemming_mode(self):
        assert TermExtractor(stem=False).extract("connections") == ["connections"]

    def test_min_length(self):
        terms = TermExtractor(min_length=3).extract("an ox ran far")
        assert "ox" not in terms
        assert "far" in terms

    def test_extract_many(self):
        terms = TermExtractor().extract_many(["cat", "dog"])
        assert terms == ["cat", "dog"]

    def test_empty_text(self):
        assert TermExtractor().extract("") == []
        assert TermExtractor().extract_counts("") == {}
