"""Tests for bootstrap confidence intervals and paired comparisons."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import EvaluationError
from repro.eval.significance import (
    ConfidenceInterval,
    bootstrap_ci,
    paired_bootstrap,
)

samples = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=2,
    max_size=15,
)


class TestBootstrapCi:
    def test_interval_contains_estimate(self):
        ci = bootstrap_ci([0.8, 0.9, 1.0, 0.85, 0.95], seed=0)
        assert ci.low <= ci.estimate <= ci.high

    def test_constant_sample_zero_width(self):
        ci = bootstrap_ci([0.5] * 6, seed=0)
        assert ci.low == ci.high == ci.estimate == 0.5

    def test_deterministic_with_seed(self):
        a = bootstrap_ci([0.1, 0.9, 0.4], seed=7)
        b = bootstrap_ci([0.1, 0.9, 0.4], seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_wider_at_higher_confidence(self):
        values = [0.2, 0.9, 0.5, 0.7, 0.3, 0.8]
        narrow = bootstrap_ci(values, confidence=0.5, seed=1)
        wide = bootstrap_ci(values, confidence=0.99, seed=1)
        assert (wide.high - wide.low) >= (narrow.high - narrow.low)

    def test_custom_statistic(self):
        ci = bootstrap_ci([1.0, 2.0, 3.0], statistic=max, seed=0)
        assert ci.estimate == 3.0
        assert ci.high == 3.0

    def test_empty_raises(self):
        with pytest.raises(EvaluationError):
            bootstrap_ci([])

    def test_bad_confidence_raises(self):
        with pytest.raises(EvaluationError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_str_format(self):
        ci = ConfidenceInterval(0.9, 0.85, 0.95, 0.95)
        assert "[0.850, 0.950]" in str(ci)

    @given(samples)
    def test_bounds_within_sample_range(self, values):
        ci = bootstrap_ci(values, n_boot=200, seed=3)
        assert min(values) - 1e-12 <= ci.low
        assert ci.high <= max(values) + 1e-12


class TestPairedBootstrap:
    def test_clear_winner(self):
        cmp = paired_bootstrap(
            [0.9, 0.95, 0.92, 0.97], [0.4, 0.5, 0.45, 0.55], seed=0
        )
        assert cmp.mean_difference > 0.4
        assert cmp.probability_a_better > 0.97
        assert cmp.significant_at_95

    def test_clear_loser(self):
        cmp = paired_bootstrap([0.1, 0.2], [0.8, 0.9], seed=0)
        assert cmp.probability_a_better < 0.03
        assert cmp.significant_at_95

    def test_tie_not_significant(self):
        cmp = paired_bootstrap(
            [0.5, 0.7, 0.6, 0.4], [0.6, 0.5, 0.4, 0.7], seed=0
        )
        assert not cmp.significant_at_95

    def test_mismatched_lengths_raise(self):
        with pytest.raises(EvaluationError):
            paired_bootstrap([1.0], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(EvaluationError):
            paired_bootstrap([], [])
