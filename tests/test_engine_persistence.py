"""Tests for index save/load."""

from __future__ import annotations

import json

import pytest

from repro.engine import InvertedIndex, ObjectDocument
from repro.engine.persistence import FORMAT_VERSION, load_index, save_index
from repro.errors import ThorError


def doc(doc_id, text):
    return ObjectDocument.build(
        doc_id=doc_id,
        site="s.example.com",
        probe_query="q",
        path="html/body/table/tr",
        page_url="http://s.example.com/?q=q",
        text=text,
    )


class TestSaveLoad:
    def test_roundtrip_preserves_search(self, tmp_path):
        index = InvertedIndex()
        index.add(doc(0, "sony camera"))
        index.add(doc(1, "red bicycle"))
        path = tmp_path / "index.json"
        assert save_index(index, path) == 2

        loaded = load_index(path)
        assert len(loaded) == 2
        original = [h.document.doc_id for h in index.search("camera")]
        restored = [h.document.doc_id for h in loaded.search("camera")]
        assert original == restored

    def test_roundtrip_preserves_metadata(self, tmp_path):
        index = InvertedIndex()
        index.add(doc(7, "alpha"))
        path = tmp_path / "index.json"
        save_index(index, path)
        restored = load_index(path).document(7)
        assert restored.site == "s.example.com"
        assert restored.page_url.startswith("http://")

    def test_empty_index(self, tmp_path):
        path = tmp_path / "empty.json"
        assert save_index(InvertedIndex(), path) == 0
        assert len(load_index(path)) == 0

    def test_unicode(self, tmp_path):
        index = InvertedIndex()
        index.add(doc(0, "café tokyo 東京"))
        path = tmp_path / "u.json"
        save_index(index, path)
        assert "café" in load_index(path).document(0).text

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ThorError, match="corrupt"):
            load_index(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "vold.json"
        path.write_text(json.dumps({"version": FORMAT_VERSION + 1, "documents": []}))
        with pytest.raises(ThorError, match="version"):
            load_index(path)

    def test_malformed_document_raises(self, tmp_path):
        path = tmp_path / "malformed.json"
        path.write_text(
            json.dumps(
                {"version": FORMAT_VERSION, "documents": [{"doc_id": "x"}]}
            )
        )
        with pytest.raises(ThorError, match="malformed"):
            load_index(path)

    def test_documents_listing_sorted(self):
        index = InvertedIndex()
        index.add(doc(5, "five"))
        index.add(doc(1, "one"))
        assert [d.doc_id for d in index.documents()] == [1, 5]
