"""Fault-injection tests for the artifact store and its GC.

The store's contract under corruption is *corrupt-file-as-miss*: a
truncated ``.npz`` or half-written JSON (a crash between ``mkstemp``
and ``os.replace`` on a non-atomic filesystem, bit rot) must read as a
cache miss — counted, and repaired by the next put — never as an
exception or a wrong value. GC must tolerate corrupt entries and
in-flight temp files without touching what it shouldn't.
"""

from __future__ import annotations

import os

import pytest

from repro.artifacts import ArtifactStore, collect
from repro.artifacts.gc import iter_entries
from repro.resilience import FaultPlan, activate_fault_plan

np = pytest.importorskip("numpy")

KIND = "records"


def _artifact_path(store: ArtifactStore, kind: str, key: str, ext: str) -> str:
    path = store._path(kind, key, ext)
    assert os.path.exists(path)
    return path


def _truncate(path: str, keep_fraction: float = 0.5) -> None:
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(max(1, int(size * keep_fraction)))


class TestCorruptFileAsMiss:
    def test_truncated_npz_is_a_miss_and_repairable(self, tmp_path):
        store = ArtifactStore(tmp_path)
        arrays = {"m": np.arange(600, dtype=np.float64).reshape(20, 30)}
        store.put_arrays(KIND, "k1", arrays, meta={"cols": 30})
        _truncate(_artifact_path(store, KIND, "k1", "npz"))
        misses_before = store.counters["misses"]
        assert store.get_arrays(KIND, "k1") is None
        assert store.counters["misses"] == misses_before + 1
        # The next put repairs the entry in place.
        store.put_arrays(KIND, "k1", arrays, meta={"cols": 30})
        bundle = store.get_arrays(KIND, "k1")
        assert bundle is not None
        assert np.array_equal(bundle["m"], arrays["m"])
        assert bundle["meta"] == {"cols": 30}

    def test_single_byte_npz_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_arrays(KIND, "k1", {"m": np.ones(4)})
        _truncate(_artifact_path(store, KIND, "k1", "npz"), keep_fraction=0.0)
        assert store.get_arrays(KIND, "k1") is None

    def test_half_written_json_is_a_miss_and_repairable(self, tmp_path):
        store = ArtifactStore(tmp_path)
        value = {"terms": {f"t{i}": i for i in range(50)}}
        store.put_json(KIND, "k2", value)
        _truncate(_artifact_path(store, KIND, "k2", "json"))
        assert store.get_json(KIND, "k2") is None
        store.put_json(KIND, "k2", value)
        assert store.get_json(KIND, "k2") == value

    def test_garbage_json_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_json(KIND, "k3", [1, 2, 3])
        path = _artifact_path(store, KIND, "k3", "json")
        with open(path, "wb") as handle:
            handle.write(b"\xff\xfe not json at all")
        assert store.get_json(KIND, "k3") is None


class TestInjectedTornWrites:
    def test_fault_plan_tears_publishes_at_the_replace_boundary(self, tmp_path):
        store = ArtifactStore(tmp_path)
        value = {"payload": list(range(200))}
        plan = FaultPlan(seed=1, artifact_corrupt_rate=1.0)
        with activate_fault_plan(plan):
            store.put_json(KIND, "k1", value)
            store.put_arrays(KIND, "k2", {"m": np.arange(100.0)})
        assert plan.injected["artifact_corrupt"] == 2
        # Torn files read as misses...
        assert store.get_json(KIND, "k1") is None
        assert store.get_arrays(KIND, "k2") is None
        # ...and a fault-free put repairs them.
        store.put_json(KIND, "k1", value)
        assert store.get_json(KIND, "k1") == value

    def test_corrupt_decision_is_seeded_per_key(self, tmp_path):
        plan_a = FaultPlan(seed=7, artifact_corrupt_rate=0.5)
        plan_b = FaultPlan(seed=7, artifact_corrupt_rate=0.5)
        names = [f"{i:02x}deadbeef.json" for i in range(40)]
        decisions_a = [plan_a.corrupts_artifact(n) for n in names]
        decisions_b = [plan_b.corrupts_artifact(n) for n in reversed(names)]
        assert decisions_a == list(reversed(decisions_b))
        assert any(decisions_a) and not all(decisions_a)


class TestGcUnderCorruption:
    def _populate(self, store: ArtifactStore) -> None:
        for i in range(4):
            store.put_json(KIND, f"key{i}" + "0" * 8, {"i": i})
        store.put_arrays("spaces", "s0" + "0" * 8, {"m": np.ones(8)})

    def test_gc_skips_tmp_files_and_the_stats_ledger(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._populate(store)
        store.flush_stats()
        stray_tmp = os.path.join(store.root, KIND, "ke", "inflight.tmp")
        with open(stray_tmp, "w", encoding="utf-8") as handle:
            handle.write("half-written")
        entries = list(iter_entries(store.root))
        assert all(not path.endswith(".tmp") for path, _, _ in entries)
        report = collect(store.root, max_bytes=0)
        assert report.removed_entries == report.scanned_entries == 5
        # In-flight temp files and the counter ledger survive the sweep.
        assert os.path.exists(stray_tmp)
        assert os.path.exists(os.path.join(store.root, "stats.json"))

    def test_gc_evicts_corrupt_entries_like_any_other(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._populate(store)
        victim = _artifact_path(store, KIND, "key0" + "0" * 8, "json")
        _truncate(victim)
        report = collect(store.root, max_bytes=0)
        assert report.removed_entries == 5
        assert not os.path.exists(victim)

    def test_gc_after_chaos_run_leaves_a_servable_store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with activate_fault_plan(FaultPlan(seed=3, artifact_corrupt_rate=0.5)):
            for i in range(10):
                store.put_json(KIND, f"k{i}" + "0" * 8, {"i": i})
        # Age-based GC with no cutoff pressure keeps everything; reads
        # of whatever survived chaos are misses or correct values,
        # never errors.
        collect(store.root, max_age_s=3600.0)
        for i in range(10):
            value = store.get_json(KIND, f"k{i}" + "0" * 8)
            assert value is None or value == {"i": i}
