"""Tests for the vector-space substrate."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import VectorError
from repro.vsm import (
    CorpusWeighter,
    SparseVector,
    centroid,
    cosine_similarity,
    dot_product,
    minkowski_distance,
    paper_tfidf_weight,
    raw_tf_vector,
)
from repro.vsm.centroid import internal_similarity, vector_sum
from repro.vsm.similarity import cosine_distance, euclidean_distance
from repro.vsm.weighting import tfidf_vectors

finite_weights = st.dictionaries(
    st.sampled_from("abcdefgh"),
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    max_size=6,
)


class TestSparseVector:
    def test_zero_entries_dropped(self):
        v = SparseVector({"a": 1.0, "b": 0.0})
        assert "b" not in v
        assert len(v) == 1

    def test_getitem_default_zero(self):
        v = SparseVector({"a": 2.0})
        assert v["a"] == 2.0
        assert v["zzz"] == 0.0

    def test_norm(self):
        v = SparseVector({"a": 3.0, "b": 4.0})
        assert v.norm == 5.0

    def test_dot(self):
        a = SparseVector({"x": 1.0, "y": 2.0})
        b = SparseVector({"y": 3.0, "z": 4.0})
        assert a.dot(b) == 6.0

    def test_dot_disjoint_is_zero(self):
        assert SparseVector({"a": 1}).dot(SparseVector({"b": 1})) == 0.0

    def test_normalized(self):
        v = SparseVector({"a": 3.0, "b": 4.0}).normalized()
        assert math.isclose(v.norm, 1.0)

    def test_normalize_zero_raises(self):
        with pytest.raises(VectorError):
            SparseVector().normalized()

    def test_add_subtract(self):
        a = SparseVector({"x": 1.0})
        b = SparseVector({"x": 2.0, "y": 1.0})
        assert (a + b).to_dict() == {"x": 3.0, "y": 1.0}
        assert (b - a).to_dict() == {"x": 1.0, "y": 1.0}

    def test_subtract_to_zero_drops_entry(self):
        a = SparseVector({"x": 1.0})
        assert (a - a).is_zero()

    def test_scale(self):
        assert (SparseVector({"a": 2.0}) * 0.5).to_dict() == {"a": 1.0}

    def test_equality(self):
        assert SparseVector({"a": 1.0}) == SparseVector({"a": 1.0})
        assert SparseVector({"a": 1.0}) != SparseVector({"a": 2.0})

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(SparseVector())

    def test_immutability_of_operations(self):
        a = SparseVector({"x": 1.0})
        _ = a + SparseVector({"x": 5.0})
        assert a["x"] == 1.0

    @given(finite_weights, finite_weights)
    def test_dot_commutative(self, da, db):
        a, b = SparseVector(da), SparseVector(db)
        assert math.isclose(a.dot(b), b.dot(a), abs_tol=1e-9)

    @given(finite_weights)
    def test_norm_matches_definition(self, data):
        v = SparseVector(data)
        expected = math.sqrt(sum(x * x for x in v.to_dict().values()))
        assert math.isclose(v.norm, expected, rel_tol=1e-12)


class TestSimilarity:
    def test_cosine_identical(self):
        v = SparseVector({"a": 1.0, "b": 2.0})
        assert math.isclose(cosine_similarity(v, v), 1.0, rel_tol=1e-12)

    def test_cosine_orthogonal(self):
        assert cosine_similarity(SparseVector({"a": 1}), SparseVector({"b": 1})) == 0.0

    def test_cosine_scale_invariant(self):
        a = SparseVector({"a": 1.0, "b": 1.0})
        assert math.isclose(cosine_similarity(a, a * 7.3), 1.0)

    def test_cosine_zero_vector(self):
        assert cosine_similarity(SparseVector(), SparseVector({"a": 1})) == 0.0

    def test_cosine_distance_complement(self):
        a = SparseVector({"a": 1.0})
        b = SparseVector({"a": 1.0, "b": 1.0})
        assert math.isclose(
            cosine_distance(a, b), 1.0 - cosine_similarity(a, b)
        )

    def test_dot_product(self):
        assert dot_product(SparseVector({"a": 2}), SparseVector({"a": 3})) == 6.0

    def test_minkowski_p1(self):
        a = SparseVector({"x": 1.0})
        b = SparseVector({"x": 4.0, "y": 2.0})
        assert minkowski_distance(a, b, 1.0) == 5.0

    def test_minkowski_p2_is_euclidean(self):
        a = SparseVector({"x": 0.0})
        b = SparseVector({"x": 3.0, "y": 4.0})
        assert euclidean_distance(a, b) == 5.0

    def test_minkowski_invalid_p(self):
        with pytest.raises(ValueError):
            minkowski_distance(SparseVector(), SparseVector(), 0.0)

    @given(finite_weights, finite_weights)
    def test_cosine_bounded(self, da, db):
        value = cosine_similarity(SparseVector(da), SparseVector(db))
        assert -1.0 <= value <= 1.0

    @given(finite_weights, finite_weights)
    def test_cosine_symmetric(self, da, db):
        a, b = SparseVector(da), SparseVector(db)
        assert math.isclose(
            cosine_similarity(a, b), cosine_similarity(b, a), abs_tol=1e-9
        )


class TestWeighting:
    def test_paper_weight_formula(self):
        # w = log(tf+1) * log((n+1)/nk)
        assert math.isclose(
            paper_tfidf_weight(3, 10, 2), math.log(4) * math.log(11 / 2)
        )

    def test_zero_tf_gives_zero(self):
        assert paper_tfidf_weight(0, 10, 5) == 0.0

    def test_ubiquitous_feature_nonzero(self):
        # A tag in every page keeps a small non-zero idf: log((n+1)/n).
        weight = paper_tfidf_weight(5, 100, 100)
        assert 0 < weight < 0.2

    def test_raw_tf_normalized(self):
        v = raw_tf_vector({"a": 2, "b": 1})
        assert math.isclose(v.norm, 1.0)

    def test_raw_tf_empty_ok(self):
        assert raw_tf_vector({}).is_zero()

    def test_fit_document_frequencies(self):
        weighter = CorpusWeighter.fit([{"a": 1}, {"a": 2, "b": 1}])
        assert weighter.doc_freq == {"a": 2, "b": 1}
        assert weighter.n_docs == 2

    def test_idf_unseen_feature_zero(self):
        weighter = CorpusWeighter.fit([{"a": 1}])
        assert weighter.idf("zzz") == 0.0

    def test_transform_drops_unseen(self):
        weighter = CorpusWeighter.fit([{"a": 1}])
        v = weighter.transform({"a": 1, "new": 5})
        assert "new" not in v

    def test_rare_feature_outweighs_common(self):
        docs = [{"common": 1, "rare": 1}] + [{"common": 1}] * 9
        weighter = CorpusWeighter.fit(docs)
        v = weighter.transform(docs[0])
        assert v["rare"] > v["common"]

    def test_tfidf_vectors_one_shot(self):
        vectors = tfidf_vectors([{"a": 1}, {"b": 1}])
        assert len(vectors) == 2
        assert all(math.isclose(v.norm, 1.0) for v in vectors)

    def test_negative_n_docs_raises(self):
        with pytest.raises(ValueError):
            CorpusWeighter(-1, {})


class TestCentroid:
    def test_mean(self):
        c = centroid([SparseVector({"a": 2.0}), SparseVector({"a": 4.0, "b": 2.0})])
        assert c.to_dict() == {"a": 3.0, "b": 1.0}

    def test_empty_raises(self):
        with pytest.raises(VectorError):
            centroid([])

    def test_vector_sum_empty(self):
        assert vector_sum([]).is_zero()

    def test_internal_similarity_identical_vectors(self):
        vectors = [SparseVector({"a": 1.0})] * 5
        assert math.isclose(internal_similarity(vectors), 5.0)

    def test_internal_similarity_empty(self):
        assert internal_similarity([]) == 0.0

    def test_internal_similarity_bounded_by_n(self):
        vectors = [
            SparseVector({"a": 1.0}),
            SparseVector({"b": 1.0}),
            SparseVector({"a": 1.0, "b": 1.0}).normalized(),
        ]
        assert internal_similarity(vectors) <= 3.0
