"""Tests for the concurrent probing subsystem (repro.probe)."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.config import ExecutionConfig, ProbeConfig, ThorConfig
from repro.core.page import Page
from repro.core.probing import ProbeResult, QueryProber
from repro.deepweb.corpus import make_site
from repro.errors import ProbeError, ThorError
from repro.probe import (
    FaultInjectingSource,
    FaultSpec,
    ProbeBudget,
    ProbeServerError,
    ProbeThrottled,
    ProbeTimeout,
    RetryPolicy,
    classify_failure,
    execute_probe,
    format_probe_report,
    probe_sites,
    resolve_probe_concurrency,
)
from repro.probe.errors import (
    ERROR,
    MALFORMED,
    SERVER_ERROR,
    THROTTLED,
    TIMEOUT,
    ProbeMalformed,
    failure_message,
)
from repro.probe.executor import SiteJob


class _EchoSource:
    """Minimal sync source; optionally fails a fixed set of terms."""

    def __init__(self, fail_terms=()):
        self.fail_terms = set(fail_terms)
        self.seen = []

    def query(self, term: str) -> Page:
        self.seen.append(term)
        if term in self.fail_terms:
            raise RuntimeError(f"boom on {term}")
        return Page(f"<html><body>{term}</body></html>",
                    url=f"http://e.com/?q={term}")


class _AlwaysServerError:
    def __init__(self):
        self.calls = 0

    def query(self, term: str) -> Page:
        self.calls += 1
        raise ProbeServerError("500")


class _EmptyPages:
    def query(self, term: str) -> Page:
        return Page("", url=f"http://e.com/?q={term}")


class _FlakyOnce:
    """Fails each term's first attempt with a transient error."""

    def __init__(self):
        self.attempts = {}

    def query(self, term: str) -> Page:
        count = self.attempts.get(term, 0) + 1
        self.attempts[term] = count
        if count == 1:
            raise ProbeThrottled("slow down")
        return Page(f"<html><body>{term}</body></html>")


class TestTaxonomy:
    def test_classification(self):
        assert classify_failure(ProbeTimeout("t")) == TIMEOUT
        assert classify_failure(TimeoutError()) == TIMEOUT
        assert classify_failure(ProbeThrottled("t")) == THROTTLED
        assert classify_failure(ProbeServerError("t")) == SERVER_ERROR
        assert classify_failure(ProbeMalformed("t")) == MALFORMED
        assert classify_failure(KeyError("t")) == ERROR

    def test_taxonomy_derives_from_probe_error(self):
        for exc_class in (ProbeTimeout, ProbeThrottled, ProbeServerError,
                          ProbeMalformed):
            assert issubclass(exc_class, ProbeError)
            assert issubclass(exc_class, ThorError)

    def test_failure_message_has_class_name(self):
        assert failure_message(RuntimeError("down")) == "RuntimeError: down"
        assert failure_message(ProbeTimeout()) == "ProbeTimeout"


class TestRetryPolicy:
    def test_transient_kinds_retry_within_budget(self):
        policy = RetryPolicy(max_retries=2)
        for kind in (TIMEOUT, THROTTLED, SERVER_ERROR):
            assert policy.should_retry(kind, 1)
            assert policy.should_retry(kind, 2)
            assert not policy.should_retry(kind, 3)

    def test_non_transient_kinds_never_retry(self):
        policy = RetryPolicy(max_retries=5)
        assert not policy.should_retry(MALFORMED, 1)
        assert not policy.should_retry(ERROR, 1)

    def test_backoff_deterministic_and_bounded(self):
        policy = RetryPolicy(seed=7, backoff_base_s=0.1, backoff_cap_s=0.3)
        first = policy.backoff_delay("cat", 1)
        assert first == policy.backoff_delay("cat", 1)
        assert first != policy.backoff_delay("dog", 1)
        # jitter shaves at most `jitter` off the nominal delay
        assert 0.05 <= first <= 0.1
        # exponential growth capped
        assert policy.backoff_delay("cat", 5) <= 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestProbeBudget:
    def test_burst_grants_are_instant(self):
        budget = ProbeBudget(rate=5.0, burst=3)

        async def drain():
            started = time.monotonic()
            for _ in range(3):
                await budget.acquire()
            return time.monotonic() - started

        assert asyncio.run(drain()) < 0.1
        assert budget.granted == 3
        assert budget.within_budget()

    def test_rate_enforced_beyond_burst(self):
        budget = ProbeBudget(rate=50.0, burst=1)

        async def drain():
            started = time.monotonic()
            for _ in range(4):
                await budget.acquire()
            return time.monotonic() - started

        # 3 refills at 50/s: at least ~60ms
        assert asyncio.run(drain()) >= 0.05
        assert budget.within_budget()
        observed = budget.observed_rate()
        assert observed is not None and observed <= 60.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbeBudget(rate=0)
        with pytest.raises(ValueError):
            ProbeBudget(rate=1, burst=0)


class TestFaultInjection:
    def test_plan_is_deterministic_per_seed(self):
        site = _EchoSource()
        a = FaultInjectingSource(site, FaultSpec(error_rate=0.5), seed=3)
        b = FaultInjectingSource(site, FaultSpec(error_rate=0.5), seed=3)
        plans_a = [a.plan(f"t{i}", 1) for i in range(50)]
        plans_b = [b.plan(f"t{i}", 1) for i in range(50)]
        assert plans_a == plans_b
        c = FaultInjectingSource(site, FaultSpec(error_rate=0.5), seed=4)
        assert plans_a != [c.plan(f"t{i}", 1) for i in range(50)]

    def test_fault_rates_materialize(self):
        source = FaultInjectingSource(
            _EchoSource(),
            FaultSpec(throttle_rate=0.5, error_rate=0.25),
            seed=1,
            label="x",
        )
        outcomes = {THROTTLED: 0, SERVER_ERROR: 0, "ok": 0}
        for i in range(200):
            try:
                source.query(f"term{i}")
                outcomes["ok"] += 1
            except ProbeThrottled:
                outcomes[THROTTLED] += 1
            except ProbeServerError:
                outcomes[SERVER_ERROR] += 1
        assert 60 <= outcomes[THROTTLED] <= 140
        assert 20 <= outcomes[SERVER_ERROR] <= 80
        assert outcomes["ok"] >= 30
        assert source.calls == 200

    def test_reset_replays_identically(self):
        source = FaultInjectingSource(
            _EchoSource(), FaultSpec(error_rate=0.4), seed=9, label="x"
        )

        def sweep():
            results = []
            for i in range(30):
                try:
                    source.query(f"t{i}")
                    results.append("ok")
                except ProbeError as exc:
                    results.append(type(exc).__name__)
            return results

        first = sweep()
        source.reset()
        assert sweep() == first

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(error_rate=1.2)
        with pytest.raises(ValueError):
            FaultSpec(error_rate=0.6, throttle_rate=0.6)
        with pytest.raises(ValueError):
            FaultSpec(latency_s=-1)


class TestExecutor:
    def test_resolve_concurrency_precedence(self):
        assert resolve_probe_concurrency(ProbeConfig()) == 1
        assert resolve_probe_concurrency(ProbeConfig(concurrency=4)) == 4
        assert (
            resolve_probe_concurrency(
                ProbeConfig(), ExecutionConfig(n_jobs=3)
            )
            == 3
        )
        # explicit probe concurrency outranks the execution config
        assert (
            resolve_probe_concurrency(
                ProbeConfig(concurrency=2), ExecutionConfig(n_jobs=8)
            )
            == 2
        )
        assert resolve_probe_concurrency(ProbeConfig(concurrency=0)) >= 1

    def test_concurrent_identical_to_serial_clean_source(self):
        terms = [f"term{i}" for i in range(24)]
        serial = execute_probe(_EchoSource(), terms, config=ProbeConfig())
        concurrent = execute_probe(
            _EchoSource(), terms, config=ProbeConfig(concurrency=8)
        )
        assert [p.html for p in serial.pages] == [p.html for p in concurrent.pages]
        assert serial.terms == concurrent.terms
        assert serial.failures == concurrent.failures

    def test_concurrent_identical_to_serial_faulty_source(self):
        site = make_site("music", seed=5, records=40)
        spec = FaultSpec(error_rate=0.25, throttle_rate=0.1)

        def run(concurrency):
            prober = QueryProber(
                ProbeConfig(dictionary_queries=30, nonsense_queries=3,
                            concurrency=concurrency),
                seed=11,
            )
            return prober.probe(
                FaultInjectingSource(site, spec, seed=4, label="m")
            )

        serial, concurrent = run(1), run(8)
        assert [p.html for p in serial.pages] == [
            p.html for p in concurrent.pages
        ]
        assert serial.terms == concurrent.terms
        assert serial.failures == concurrent.failures

    def test_retries_recover_transient_failures(self):
        source = _FlakyOnce()
        terms = [f"t{i}" for i in range(20)]
        result = execute_probe(
            source, terms, config=ProbeConfig(concurrency=4, max_retries=2)
        )
        assert len(result.pages) == 20
        telemetry = result.telemetry
        assert telemetry.recovered_count == 20
        assert telemetry.recovery_rate == 1.0
        assert telemetry.attempts_total == 40

    def test_fault_recovery_rate_above_90_percent(self):
        # error_rate 0.3 with 3 retries: P(all four attempts fail)
        # = 0.008, so well over 90% of transiently failing terms
        # recover (2 retries puts the expectation at ~91%, too close
        # to the line for one 110-term draw).
        site = make_site("ecommerce", seed=2, records=60)
        faulty = FaultInjectingSource(
            site, FaultSpec(error_rate=0.3), seed=8, label="e"
        )
        prober = QueryProber(ProbeConfig(concurrency=8, max_retries=3), seed=2)
        result = prober.probe(faulty)
        telemetry = result.telemetry
        assert telemetry.retried_count > 0
        assert telemetry.recovery_rate is not None
        assert telemetry.recovery_rate >= 0.9

    def test_rate_budget_not_exceeded(self):
        terms = [f"t{i}" for i in range(12)]
        config = ProbeConfig(concurrency=8, rate=100.0, burst=2)
        started = time.monotonic()
        result = execute_probe(_EchoSource(), terms, config=config)
        elapsed = time.monotonic() - started
        # 12 grants, burst 2 at 100/s: at least (12-2)/100 = 0.1s
        assert elapsed >= 0.08
        assert result.telemetry.budget_granted == 12
        assert result.telemetry.rate == 100.0

    def test_timeout_is_classified_and_failed(self):
        class _Hangs:
            async def aquery(self, term):
                await asyncio.sleep(5.0)

            def query(self, term):  # pragma: no cover - not used
                raise AssertionError

        terms = ["a", "b"]
        source = _EchoSource()
        slow = _Hangs()
        # mix: slow source alone would raise ProbeError, so probe both
        # sites in one pool and check the slow site's outcome kinds.
        with pytest.raises(ProbeError):
            execute_probe(
                slow,
                terms,
                config=ProbeConfig(
                    concurrency=2, timeout_s=0.05, max_retries=0
                ),
            )
        ok = execute_probe(
            source, terms, config=ProbeConfig(concurrency=2, timeout_s=5.0)
        )
        assert len(ok.pages) == 2

    def test_async_source_used_directly(self):
        class _AsyncOnly:
            def __init__(self):
                self.async_calls = 0

            async def aquery(self, term):
                self.async_calls += 1
                await asyncio.sleep(0)
                return Page(f"<p>{term}</p>")

            def query(self, term):  # pragma: no cover - must not run
                raise AssertionError("sync path should not be used")

        source = _AsyncOnly()
        result = execute_probe(source, ["x", "y"], config=ProbeConfig(concurrency=2))
        assert source.async_calls == 2
        assert len(result.pages) == 2

    def test_simulated_site_async_adapter(self):
        site = make_site("jobs", seed=3, records=30)
        sync_page = site.query("zzz")
        async_page = asyncio.run(site.aquery("zzz"))
        assert async_page.html == sync_page.html

    def test_multisite_fanout_matches_per_site_runs(self):
        sites = [make_site("music", seed=1), make_site("jobs", seed=2)]
        config = ProbeConfig(dictionary_queries=10, nonsense_queries=2)
        jobs = []
        singles = []
        for index, site in enumerate(sites):
            prober = QueryProber(config, seed=index)
            terms = tuple(prober.select_terms())
            jobs.append(SiteJob(site, terms, seed=index))
            singles.append(
                execute_probe(site, terms, config=config, seed=index)
            )
        fanned = probe_sites(
            jobs, config=config, execution=ExecutionConfig(n_jobs=4)
        )
        for single, multi in zip(singles, fanned):
            assert single.terms == multi.terms
            assert [p.html for p in single.pages] == [
                p.html for p in multi.pages
            ]

    def test_probe_sites_empty(self):
        assert probe_sites([]) == []


class TestProbeEdgeCases:
    def test_always_raising_source_raises_probe_error(self):
        with pytest.raises(ProbeError):
            QueryProber(ProbeConfig(3, 1), seed=0).probe(_AlwaysServerError())

    def test_always_raising_source_consumes_retries(self):
        source = _AlwaysServerError()
        with pytest.raises(ProbeError):
            execute_probe(
                source, ["a", "b"], config=ProbeConfig(max_retries=2)
            )
        # 2 terms x (1 attempt + 2 retries)
        assert source.calls == 6

    def test_empty_pages_are_still_collected(self):
        result = QueryProber(ProbeConfig(4, 1), seed=0).probe(_EmptyPages())
        assert len(result.pages) == 5
        assert all(p.html == "" for p in result.pages)
        assert all(p.query for p in result.pages)

    def test_zero_dictionary_config(self):
        result = QueryProber(ProbeConfig(0, 5), seed=0).probe(_EchoSource())
        assert len(result.pages) == 5
        assert len(result.terms) == 5

    def test_zero_probes_raises(self):
        with pytest.raises(ProbeError):
            QueryProber(ProbeConfig(0, 0), seed=0).probe(_EchoSource())

    def test_failures_deduplicated_with_class_names(self):
        # A two-word dictionary sampled 8 times repeats terms; the
        # failing term must appear once in failures, with its class.
        prober = QueryProber(
            ProbeConfig(8, 0), dictionary=["good", "bad"], seed=0
        )
        result = prober.probe(_EchoSource(fail_terms=["bad"]))
        bad_entries = [f for f in result.failures if f[0] == "bad"]
        assert len(bad_entries) == 1
        assert bad_entries[0][1] == "RuntimeError: boom on bad"

    def test_probe_config_validation(self):
        with pytest.raises(ValueError):
            ProbeConfig(dictionary_queries=-1)
        with pytest.raises(ValueError):
            ProbeConfig(rate=0)
        with pytest.raises(ValueError):
            ProbeConfig(burst=0)
        with pytest.raises(ValueError):
            ProbeConfig(timeout_s=-1)
        with pytest.raises(ValueError):
            ProbeConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ProbeConfig(concurrency=-2)


class TestTelemetry:
    def test_telemetry_attached_and_consistent(self):
        result = QueryProber(ProbeConfig(6, 2), seed=1).probe(_EchoSource())
        telemetry = result.telemetry
        assert telemetry is not None
        assert len(telemetry) == 8
        assert telemetry.ok_count == 8
        assert telemetry.failed_count == 0
        assert telemetry.outcome_counts() == {"ok": 8}
        assert telemetry.throughput is None or telemetry.throughput > 0
        assert telemetry.concurrency == 1

    def test_telemetry_excluded_from_equality(self):
        page = Page("<p>x</p>")
        a = ProbeResult((page,), ("x",), telemetry=None)
        b = ProbeResult((page,), ("x",))
        assert a == b

    def test_format_probe_report(self):
        result = QueryProber(ProbeConfig(6, 2), seed=1).probe(_EchoSource())
        report = format_probe_report(result.telemetry)
        assert "Probe report" in report
        assert "8 ok" in report
        assert "concurrency: 1" in report

    def test_api_probe_carries_telemetry(self):
        from repro import api

        site = make_site("ecommerce", seed=7, records=40)
        config = ThorConfig(
            seed=7,
            probing=ProbeConfig(dictionary_queries=10, nonsense_queries=2),
        )
        result = api.probe(site, config)
        assert result.telemetry is not None
        assert result.telemetry.site == site.theme.host


class TestMultisiteExperiment:
    def test_fanout_matches_serial_corpus_collection(self):
        from repro.deepweb.corpus import probe_site
        from repro.eval.experiments import multisite_probe_experiment

        sites = [
            make_site("music", seed=1000, records=40),
            make_site("jobs", seed=1001, records=40),
        ]
        config = ProbeConfig(dictionary_queries=12, nonsense_queries=2)
        report = multisite_probe_experiment(
            sites, config, seed=1, execution=ExecutionConfig(n_jobs=4)
        )
        assert len(report.samples) == 2
        assert len(report.telemetries) == 2
        assert report.pages_collected > 0
        for index, (site, sample) in enumerate(zip(sites, report.samples)):
            serial = probe_site(site, config, seed=1 * 1000 + index)
            assert [p.html for p in serial.pages] == [
                p.html for p in sample.pages
            ]
