"""Tests for the simulated-site template engine internals."""

from __future__ import annotations

import pytest

from repro.deepweb.domains import get_domain
from repro.deepweb.templates import PageTemplates, SiteTheme
from repro.html import parse


@pytest.fixture(scope="module")
def theme():
    return SiteTheme.generate("ecommerce", seed=42)


@pytest.fixture(scope="module")
def templates(theme):
    return PageTemplates(theme, get_domain("ecommerce"))


@pytest.fixture(scope="module")
def records():
    return get_domain("ecommerce").generate_records(20, seed=42)


class TestSiteTheme:
    def test_deterministic(self):
        a = SiteTheme.generate("music", seed=1)
        b = SiteTheme.generate("music", seed=1)
        assert a == b

    def test_seed_changes_theme(self):
        themes = [SiteTheme.generate("music", seed=s) for s in range(10)]
        assert len({t.result_style for t in themes}) > 1

    def test_domain_changes_theme(self):
        a = SiteTheme.generate("music", seed=1)
        b = SiteTheme.generate("jobs", seed=1)
        assert a.host != b.host

    def test_fields_in_valid_ranges(self, theme):
        assert theme.result_style in ("table", "ul", "divs")
        assert theme.detail_style in ("table", "dl")
        assert 4 <= len(theme.nav_links) <= 8
        assert 0 <= theme.wrapper_depth <= 2
        assert 8 <= theme.max_results <= 15


class TestRenderedPages:
    def test_multi_page_parses_with_marked_results(self, templates, records):
        html = templates.render_multi(records, "camera")
        tree = parse(html)
        containers = [
            n for n in tree.iter_tags() if n.get("id") == "results"
        ]
        assert len(containers) == 1
        items = [
            n for n in containers[0].iter_tags() if n.get("class") == "item"
        ]
        assert 1 <= len(items) <= templates.theme.max_results

    def test_multi_page_caps_results(self, templates, records):
        html = templates.render_multi(records, "camera")
        tree = parse(html)
        container = next(
            n for n in tree.iter_tags() if n.get("id") == "results"
        )
        items = [
            n for n in container.iter_tags() if n.get("class") == "item"
        ]
        assert len(items) == min(len(records), templates.theme.max_results)

    def test_multi_page_reports_total(self, templates, records):
        html = templates.render_multi(records, "camera")
        assert f"Found {len(records)} matching entries" in html

    def test_single_page_distinct_structure(self, templates, records):
        html = templates.render_single(records[0], "camera")
        tree = parse(html)
        # Detail chrome: photo, order form, details section.
        assert tree.root.find("form") is not None
        assert any(
            n.get("class") == "photo" for n in tree.iter_tags()
        )

    def test_nomatch_page_echoes_query(self, templates):
        html = templates.render_nomatch("xqzzy")
        assert "xqzzy" in html
        assert "results" not in [
            n.get("id") for n in parse(html).iter_tags()
        ]

    def test_error_page_chrome_free(self, templates):
        html = templates.render_error("anything")
        tree = parse(html)
        classes = {n.get("class") for n in tree.iter_tags()}
        assert "masthead" not in classes
        assert "nav" not in classes

    def test_chrome_shared_across_classes(self, templates, records):
        multi = parse(templates.render_multi(records, "q1"))
        nomatch = parse(templates.render_nomatch("q2"))
        for tree in (multi, nomatch):
            classes = {n.get("class") for n in tree.iter_tags()}
            assert "masthead" in classes
            assert "footer" in classes

    def test_dynamic_ad_varies_with_query(self):
        theme = SiteTheme.generate("ecommerce", seed=3)
        assert theme.has_dynamic_ad  # seed 3's theme has one
        templates = PageTemplates(theme, get_domain("ecommerce"))
        a = templates.render_nomatch("alpha")
        b = templates.render_nomatch("beta")
        ad_a = a.split('class="promo"')[1][:200]
        ad_b = b.split('class="promo"')[1][:200]
        assert ad_a != ad_b

    def test_rendering_deterministic_per_query(self, templates, records):
        assert templates.render_multi(records, "q") == templates.render_multi(
            records, "q"
        )

    def test_noise_varies_across_queries(self, templates, records):
        pages = [
            templates.render_multi(records, f"query{i}") for i in range(30)
        ]
        with_related = sum(1 for p in pages if 'class="related"' in p)
        # noise_level=0.25: some but not all pages carry the jitter.
        assert 0 < with_related < 30

    def test_all_result_styles_render(self, records):
        domain = get_domain("ecommerce")
        seen = set()
        for seed in range(30):
            theme = SiteTheme.generate("ecommerce", seed=seed)
            templates = PageTemplates(theme, domain)
            html = templates.render_multi(records, "q")
            assert parse(html).root.find("body") is not None
            seen.add(theme.result_style)
        assert seen == {"table", "ul", "divs"}


class TestRecommendationsBlock:
    def _themed(self, want: bool):
        for seed in range(40):
            theme = SiteTheme.generate("ecommerce", seed=seed)
            if theme.has_recommendations == want:
                return theme
        raise AssertionError("no theme with has_recommendations=%s" % want)

    def test_some_sites_have_recommendations(self):
        flags = {
            SiteTheme.generate("ecommerce", seed=s).has_recommendations
            for s in range(40)
        }
        assert flags == {True, False}

    def test_recs_share_result_markup(self):
        theme = self._themed(True)
        domain = get_domain("ecommerce")
        templates = PageTemplates(theme, domain)
        records = domain.generate_records(10, seed=1)
        tree = parse(templates.render_multi(records, "camera"))
        recs = [n for n in tree.iter_tags() if n.get("class") == "recs"]
        assert len(recs) == 1
        results = next(
            n for n in tree.iter_tags() if n.get("id") == "results"
        )
        # Same container tag as the results region: identical paths.
        assert recs[0].tag == results.tag

    def test_recs_vary_with_query(self):
        theme = self._themed(True)
        domain = get_domain("ecommerce")
        templates = PageTemplates(theme, domain)
        records = domain.generate_records(10, seed=1)
        a = templates.render_multi(records, "alpha")
        b = templates.render_multi(records, "beta")
        assert a.split('class="recs"')[1][:150] != b.split('class="recs"')[1][:150]

    def test_recs_not_in_gold_objects(self):
        from repro.deepweb import make_site

        for seed in range(40):
            site = make_site("ecommerce", seed=seed, error_rate=0.0)
            if not site.theme.has_recommendations:
                continue
            word = next(
                w for w in site.database.vocabulary()
                if site.database.match_count(w) >= 3
            )
            page = site.query(word)
            # Gold objects all live under the results container, never
            # in the recommendations block.
            for path in page.gold_object_paths:
                assert path.startswith(page.gold_pagelet_path)
            return
        raise AssertionError("no recommendation-bearing site found")

    def test_extraction_still_exact_with_recommendations(self):
        from repro import Thor, ThorConfig
        from repro.deepweb import make_site

        for seed in range(40):
            site = make_site("ecommerce", seed=seed, error_rate=0.0)
            if site.theme.has_recommendations:
                break
        result = Thor(ThorConfig(seed=seed)).run(site)
        exact = sum(
            1 for p in result.pagelets
            if p.path == p.page.gold_pagelet_path
        )
        assert exact / max(1, len(result.pagelets)) >= 0.85
