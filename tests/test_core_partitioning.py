"""Tests for Stage-3 QA-Object partitioning."""

from __future__ import annotations

import pytest

from repro.config import SubtreeConfig, ThorConfig
from repro.core import Thor
from repro.core.page import Page
from repro.core.pagelet import QAPagelet
from repro.core.partitioning import ObjectPartitioner
from repro.deepweb import make_site
from repro.html.paths import node_path


def pagelet_from(html, container_tag):
    page = Page(html)
    node = page.tree.root.find(container_tag)
    return QAPagelet(page=page, path=node_path(node), node=node)


class TestStructuralSearch:
    def test_table_rows_become_objects(self):
        rows = "".join(
            f"<tr><td>item {i}</td><td>price {i}</td></tr>" for i in range(5)
        )
        pagelet = pagelet_from(
            f"<html><body><table>{rows}</table></body></html>", "table"
        )
        part = ObjectPartitioner().partition(pagelet)
        assert len(part.objects) == 5
        assert all(o.node.tag == "tr" for o in part.objects)
        assert part.separator_parent.endswith("table")

    def test_list_items_become_objects(self):
        items = "".join(f"<li><b>entry {i}</b></li>" for i in range(7))
        pagelet = pagelet_from(f"<html><body><ul>{items}</ul></body></html>", "ul")
        part = ObjectPartitioner().partition(pagelet)
        assert len(part.objects) == 7

    def test_div_blocks_become_objects(self):
        blocks = "".join(
            f'<div class="item"><a href="/{i}">t{i}</a><span>d{i}</span></div>'
            for i in range(4)
        )
        pagelet = pagelet_from(
            f"<html><body><div id='r'>{blocks}</div></body></html>", "div"
        )
        part = ObjectPartitioner().partition(pagelet)
        assert len(part.objects) == 4

    def test_rows_preferred_over_their_cells(self):
        # Rows with many uniform cells: the shallower row group must
        # win over any single row's cell group.
        rows = "".join(
            "<tr>" + "".join(f"<td>c{i}{j}</td>" for j in range(8)) + "</tr>"
            for i in range(3)
        )
        pagelet = pagelet_from(
            f"<html><body><table>{rows}</table></body></html>", "table"
        )
        part = ObjectPartitioner().partition(pagelet)
        assert all(o.node.tag == "tr" for o in part.objects)

    def test_spacer_rows_skipped(self):
        rows = (
            "<tr><td>real one</td></tr>"
            "<tr><td></td></tr>"  # no content
            "<tr><td>real two</td></tr>"
        )
        pagelet = pagelet_from(
            f"<html><body><table>{rows}</table></body></html>", "table"
        )
        part = ObjectPartitioner().partition(pagelet)
        texts = [o.text() for o in part.objects]
        assert texts == ["real one", "real two"]


class TestSingleObjectFallback:
    def test_no_repetition_yields_single_object(self):
        pagelet = pagelet_from(
            "<html><body><div><h2>One</h2><p>thing</p></div></body></html>", "div"
        )
        part = ObjectPartitioner().partition(pagelet)
        assert len(part.objects) == 1
        assert part.objects[0].path == pagelet.path
        assert part.separator_parent is None

    def test_property_list_detected_via_static_paths(self):
        html = (
            "<html><body><dl>"
            "<dt>Name</dt><dd>Elvis</dd>"
            "<dt>Genre</dt><dd>Rock</dd>"
            "<dt>Year</dt><dd>1956</dd>"
            "</dl></body></html>"
        )
        page = Page(html)
        node = page.tree.root.find("dl")
        dts = [node_path(n) for n in node.find_all("dt")]
        dds = [node_path(n) for n in node.find_all("dd")]
        pagelet = QAPagelet(
            page=page,
            path=node_path(node),
            node=node,
            contained_dynamic_paths=tuple(dds),
            contained_static_paths=tuple(dts),
        )
        part = ObjectPartitioner().partition(pagelet)
        assert len(part.objects) == 1
        assert part.objects[0].path == pagelet.path


class TestRecommendations:
    def test_recommendations_guide_partitioning(self):
        rows = "".join(f"<tr><td>r{i}</td></tr>" for i in range(6))
        page = Page(f"<html><body><table>{rows}</table></body></html>")
        table = page.tree.root.find("table")
        recommended = [node_path(n) for n in table.find_all("tr")[:3]]
        pagelet = QAPagelet(
            page=page,
            path=node_path(table),
            node=table,
            contained_dynamic_paths=tuple(recommended),
        )
        part = ObjectPartitioner().partition(pagelet)
        # Recommendations covered 3 rows; expansion finds all 6.
        assert len(part.objects) == 6

    def test_stale_recommendation_paths_fall_back(self):
        rows = "".join(f"<tr><td>r{i}</td></tr>" for i in range(4))
        page = Page(f"<html><body><table>{rows}</table></body></html>")
        table = page.tree.root.find("table")
        pagelet = QAPagelet(
            page=page,
            path=node_path(table),
            node=table,
            contained_dynamic_paths=("html/body/video[9]", "html/td[77]"),
        )
        part = ObjectPartitioner().partition(pagelet)
        assert len(part.objects) == 4


class TestEndToEndObjects:
    def test_objects_match_gold_on_simulated_site(self):
        site = make_site("ecommerce", seed=17, error_rate=0.0)
        thor = Thor(ThorConfig(seed=17))
        result = thor.run(site)
        assert result.partitioned
        perfect = sum(
            1
            for part in result.partitioned
            if set(o.path for o in part.objects)
            == set(part.pagelet.page.gold_object_paths)
        )
        assert perfect / len(result.partitioned) >= 0.85

    def test_partition_all(self):
        rows = "".join(f"<tr><td>r{i}</td></tr>" for i in range(3))
        pagelet = pagelet_from(
            f"<html><body><table>{rows}</table></body></html>", "table"
        )
        parts = ObjectPartitioner().partition_all([pagelet, pagelet])
        assert len(parts) == 2
