"""Tests for Phase-2 single-page candidate filtering."""

from __future__ import annotations

from repro.core.page import Page
from repro.core.single_page import candidate_subtrees, candidate_subtrees_for_cluster
from repro.html.paths import node_path


def tags_of(page, **kwargs):
    return [n.tag for n in candidate_subtrees(page, **kwargs)]


class TestRuleOne_NoContent:
    def test_empty_subtrees_pruned(self):
        page = Page("<html><body><div></div><p>keep</p></body></html>")
        assert "div" not in tags_of(page)

    def test_img_only_subtree_pruned(self):
        page = Page("<html><body><div><img src='x'></div><p>k</p></body></html>")
        assert "div" not in tags_of(page)

    def test_whitespace_only_content_not_counted(self):
        page = Page("<html><body><div> \n </div><p>k</p></body></html>")
        assert "div" not in tags_of(page)


class TestRuleTwo_Minimality:
    def test_wrapper_with_single_content_child_pruned(self):
        page = Page("<html><body><div><p>hello</p></div></body></html>")
        assert tags_of(page) == ["p"]

    def test_chain_of_wrappers_all_pruned(self):
        page = Page(
            "<html><body><div><div><div><p>deep</p></div></div></div></body></html>"
        )
        assert tags_of(page) == ["p"]

    def test_node_with_direct_text_kept(self):
        page = Page("<html><body><div>own text<p>child</p></div></body></html>")
        assert "div" in tags_of(page)

    def test_node_with_two_content_children_kept(self):
        page = Page("<html><body><div><p>a</p><p>b</p></div></body></html>")
        tags = tags_of(page)
        assert tags.count("p") == 2
        assert "div" in tags


class TestRootExclusion:
    def test_root_never_candidate(self):
        page = Page("<html><body><p>a</p><p>b</p></body></html>")
        paths = [node_path(n) for n in candidate_subtrees(page)]
        assert "html" not in paths

    def test_body_can_be_candidate(self):
        page = Page("<html><body>text<p>a</p><p>b</p></body></html>")
        assert "body" in tags_of(page)


class TestRuleThree_Branching:
    def test_branching_required_mode(self):
        page = Page(
            "<html><body>"
            "<table><tr><td>a</td><td>b</td></tr></table>"
            "<span>flat</span><i>x</i>"
            "</body></html>"
        )
        default = tags_of(page)
        strict = tags_of(page, require_branching=True)
        assert "span" in default
        assert "span" not in strict
        # The one-row table is pruned by minimality (rule 2), but its
        # row branches (two cells) and survives strict mode.
        assert "tr" in strict


class TestDocumentOrderAndCluster:
    def test_document_order(self):
        page = Page(
            "<html><body><p>one</p><table><tr><td>x</td><td>y</td></tr></table>"
            "</body></html>"
        )
        tags = tags_of(page)
        assert tags.index("p") < tags.index("tr")

    def test_cluster_helper_shapes(self):
        pages = [
            Page("<html><body><p>a</p></body></html>"),
            Page("<html><body><p>b</p><p>c</p></body></html>"),
        ]
        per_page = candidate_subtrees_for_cluster(pages)
        assert len(per_page) == 2
        assert [len(c) for c in per_page] == [1, 3]  # p | body + 2 p

    def test_page_with_no_content(self):
        page = Page("<html><body></body></html>")
        assert candidate_subtrees(page) == []
