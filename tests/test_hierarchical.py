"""Tests for average-link agglomerative clustering."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.hierarchical import AverageLinkClusterer
from repro.errors import ClusteringError
from repro.vsm import SparseVector


def blobs():
    a = [SparseVector({"a": 1.0, "n": 0.05 * i}) for i in range(6)]
    b = [SparseVector({"b": 1.0, "m": 0.05 * i}) for i in range(6)]
    return a + b


class TestAverageLink:
    def test_separates_blobs(self):
        result = AverageLinkClusterer(2).fit(blobs())
        labels = result.clustering.labels
        assert len(set(labels[:6])) == 1
        assert len(set(labels[6:])) == 1
        assert labels[0] != labels[6]

    def test_k_one_merges_all(self):
        result = AverageLinkClusterer(1).fit(blobs())
        assert set(result.clustering.labels) == {0}

    def test_k_equals_n(self):
        vectors = blobs()
        result = AverageLinkClusterer(len(vectors)).fit(vectors)
        assert sorted(result.clustering.labels) == list(range(len(vectors)))

    def test_k_exceeds_n(self):
        vectors = blobs()[:3]
        result = AverageLinkClusterer(50).fit(vectors)
        assert result.clustering.k == 3

    def test_merge_count(self):
        vectors = blobs()
        result = AverageLinkClusterer(2).fit(vectors)
        assert len(result.merge_similarities) == len(vectors) - 2

    def test_early_merges_are_tightest(self):
        # Each blob's internal merges (similarity ~1) happen before the
        # cross-blob merge (similarity ~0).
        result = AverageLinkClusterer(1).fit(blobs())
        assert result.merge_similarities[0] > result.merge_similarities[-1]

    def test_empty_raises(self):
        with pytest.raises(ClusteringError):
            AverageLinkClusterer(2).fit([])

    def test_invalid_restarts(self):
        with pytest.raises(ClusteringError):
            AverageLinkClusterer(2, restarts=0)


class TestRestartFanout:
    """Seeded restart fan-out (repro.runtime.run_restarts) on the
    agglomerative path: parallel must equal serial bitwise."""

    def test_parallel_equals_serial(self):
        vectors = blobs()
        serial = AverageLinkClusterer(2, restarts=4, seed=7).fit(vectors)
        parallel = AverageLinkClusterer(
            2, restarts=4, seed=7, n_jobs=2
        ).fit(vectors)
        assert serial.clustering.labels == parallel.clustering.labels
        assert serial.merge_similarities == parallel.merge_similarities

    def test_seeded_restarts_deterministic(self):
        vectors = blobs()
        a = AverageLinkClusterer(2, restarts=3, seed=5).fit(vectors)
        b = AverageLinkClusterer(2, restarts=3, seed=5).fit(vectors)
        assert a.clustering.labels == b.clustering.labels

    def test_restarts_preserve_quality(self):
        result = AverageLinkClusterer(2, restarts=4, seed=1).fit(blobs())
        labels = result.clustering.labels
        assert len(set(labels[:6])) == 1
        assert len(set(labels[6:])) == 1
        assert labels[0] != labels[6]

    def test_labels_canonical_first_appearance(self):
        # Restart permutation must not leak into label numbering: the
        # first input vector always lands in cluster 0.
        result = AverageLinkClusterer(2, restarts=5, seed=3).fit(blobs())
        assert result.clustering.labels[0] == 0

    def test_invalid_k(self):
        with pytest.raises(ClusteringError):
            AverageLinkClusterer(0)

    def test_zero_vectors_tolerated(self):
        vectors = [SparseVector({"a": 1.0}), SparseVector(), SparseVector({"a": 1.0})]
        result = AverageLinkClusterer(2).fit(vectors)
        assert result.clustering.n == 3

    def test_deterministic(self):
        a = AverageLinkClusterer(3).fit(blobs()).clustering.labels
        b = AverageLinkClusterer(3).fit(blobs()).clustering.labels
        assert a == b

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.dictionaries(
                st.sampled_from("abcd"),
                st.floats(min_value=0.1, max_value=5, allow_nan=False),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=12,
        ),
        st.integers(1, 5),
    )
    def test_partition_invariants(self, dicts, k):
        vectors = [SparseVector(d) for d in dicts]
        result = AverageLinkClusterer(k).fit(vectors)
        clustering = result.clustering
        assert clustering.n == len(vectors)
        assert clustering.k == min(k, len(vectors))
        # Every item in exactly one cluster.
        seen = sorted(
            i for c in range(clustering.k) for i in clustering.members(c)
        )
        assert seen == list(range(len(vectors)))
