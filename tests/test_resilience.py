"""Unit tests for the fault-tolerant runtime layer (DESIGN.md §11).

Covers the four pillars in isolation: worker-crash recovery in
``run_chunked`` (retries, serial fallback, ``ChunkFailedError``),
stage watchdogs, the quarantine taxonomy (including ``load_pages``
parity), and the run manifest behind checkpointed resumable runs.
The end-to-end chaos invariants live in ``test_chaos_pipeline.py``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.artifacts import ArtifactStore
from repro.config import ExecutionConfig, ThorConfig
from repro.core.page import Page
from repro.deepweb.site import LabeledPage
from repro.errors import (
    ChunkFailedError,
    HtmlParseError,
    ResilienceError,
    ResumeError,
    StageTimeoutError,
    ThorError,
)
from repro.io.cache import load_pages, save_pages
from repro.resilience import (
    FaultPlan,
    InjectedPageFault,
    InjectedWorkerCrash,
    QuarantineRecord,
    RunManifest,
    RunReportBuilder,
    activate_fault_plan,
    activate_report,
    classify_quarantine,
    config_fingerprint,
    current_report,
    format_run_report,
    load_manifest,
    open_manifest,
    run_stage,
    save_manifest,
)
from repro.resilience.manifest import (
    load_probe_checkpoint,
    save_probe_checkpoint,
)
from repro.resilience.quarantine import (
    CHUNK_FAILED,
    CORRUPT_RECORD,
    ERROR,
    INJECTED,
    PARSE_ERROR,
    STAGE_LOAD,
    STAGE_TIMEOUT,
)
from repro.runtime import run_chunked


def _double_worker(payload, items):
    """Module-level (picklable) chunk worker: item * payload."""
    return [item * payload for item in items]


def _angry_worker(payload, items):
    raise ValueError("worker always fails")


class TestChunkRecovery:
    def test_inline_path_ignores_faults(self):
        plan = FaultPlan(seed=0, chunk_error_rate=1.0)
        with activate_fault_plan(plan):
            assert run_chunked(_double_worker, 3, [1, 2], n_jobs=1) == [3, 6]
        assert not plan.injected

    def test_injected_chunk_errors_degrade_to_serial_fallback(self):
        # Every attempt of every chunk fails -> retries exhaust, then
        # the serial fallback recomputes everything, bitwise identical.
        plan = FaultPlan(seed=0, chunk_error_rate=1.0)
        report = RunReportBuilder()
        execution = ExecutionConfig(n_jobs=2, chunk_retries=1)
        with activate_fault_plan(plan), activate_report(report):
            result = run_chunked(
                _double_worker, 2, list(range(6)), n_jobs=2,
                label="t", execution=execution,
            )
        assert result == [0, 2, 4, 6, 8, 10]
        built = report.build()
        assert built.serial_fallbacks == 2  # both chunks fell back
        assert built.chunk_retries == 2  # one retry round x two chunks
        assert built.recovered
        assert plan.injected["chunk_error"] == 4  # 2 chunks x 2 attempts

    def test_injected_worker_crash_is_a_broken_pool(self):
        fault = FaultPlan(seed=0, worker_crash_rate=1.0).worker_fault("t", 0, 1)
        from concurrent.futures.process import BrokenProcessPool

        assert isinstance(fault, InjectedWorkerCrash)
        assert isinstance(fault, BrokenProcessPool)

    def test_crash_then_recover_on_retry(self):
        # Rates keyed by (label, chunk, attempt): find a seed where
        # attempt 1 faults and attempt 2 does not, then verify the
        # retry round alone recovers (no serial fallback).
        seed = next(
            s for s in range(100)
            if FaultPlan(seed=s, worker_crash_rate=0.5).worker_fault("t", 0, 1)
            and not FaultPlan(seed=s, worker_crash_rate=0.5).worker_fault("t", 0, 2)
            and not FaultPlan(seed=s, worker_crash_rate=0.5).worker_fault("t", 1, 1)
        )
        plan = FaultPlan(seed=seed, worker_crash_rate=0.5)
        report = RunReportBuilder()
        with activate_fault_plan(plan), activate_report(report):
            result = run_chunked(
                _double_worker, 10, list(range(4)), n_jobs=2,
                label="t", execution=ExecutionConfig(n_jobs=2),
            )
        assert result == [0, 10, 20, 30]
        built = report.build()
        assert built.chunk_retries == 1
        assert built.serial_fallbacks == 0

    def test_recovery_off_raises_chunk_failed_with_indices(self):
        plan = FaultPlan(seed=0, chunk_error_rate=1.0)
        execution = ExecutionConfig(n_jobs=2, recovery="off")
        with activate_fault_plan(plan):
            with pytest.raises(ChunkFailedError) as excinfo:
                run_chunked(
                    _double_worker, 2, list(range(10)), n_jobs=2,
                    label="t", execution=execution,
                )
        err = excinfo.value
        assert err.label == "t"
        assert err.indices == tuple(range(0, 5))  # first chunk of two
        assert isinstance(err.__cause__, Exception)
        assert isinstance(err, ResilienceError)
        assert isinstance(err, ThorError)

    def test_worker_exception_failing_serially_too_raises(self):
        # A genuinely broken worker fails in the pool *and* in the
        # serial fallback: the fallback exception is wrapped.
        with pytest.raises(ChunkFailedError) as excinfo:
            run_chunked(
                _angry_worker, None, list(range(4)), n_jobs=2,
                label="t", execution=ExecutionConfig(n_jobs=2, chunk_retries=0),
            )
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_parallel_equals_serial_under_chaos(self):
        serial = _double_worker(7, list(range(9)))
        plan = FaultPlan(seed=3, worker_crash_rate=0.4, chunk_error_rate=0.4)
        with activate_fault_plan(plan):
            parallel = run_chunked(
                _double_worker, 7, list(range(9)), n_jobs=3,
                label="t", execution=ExecutionConfig(n_jobs=3),
            )
        assert parallel == serial


class TestWatchdog:
    def test_no_timeout_is_a_plain_call(self):
        assert run_stage(lambda: 42, "s", None) == 42

    def test_result_propagates_under_deadline(self):
        assert run_stage(lambda: "ok", "s", 5.0) == "ok"

    def test_exception_propagates_unchanged(self):
        with pytest.raises(ValueError, match="boom"):
            run_stage(lambda: (_ for _ in ()).throw(ValueError("boom")), "s", 5.0)

    def test_hung_stage_raises_typed_timeout(self):
        report = RunReportBuilder()
        with activate_report(report):
            with pytest.raises(StageTimeoutError) as excinfo:
                run_stage(lambda: time.sleep(5), "slow-stage", 0.05)
        assert excinfo.value.stage == "slow-stage"
        assert excinfo.value.timeout_s == 0.05
        assert report.build().stage_timeouts == ("slow-stage",)


class TestQuarantineTaxonomy:
    def test_classification_ladder(self):
        assert classify_quarantine(HtmlParseError("x")) == PARSE_ERROR
        assert classify_quarantine(StageTimeoutError("x")) == STAGE_TIMEOUT
        assert classify_quarantine(ChunkFailedError("x")) == CHUNK_FAILED
        assert classify_quarantine(InjectedPageFault("x")) == INJECTED
        assert classify_quarantine(ThorError("x")) == ERROR

    def test_record_is_frozen_and_printable(self):
        record = QuarantineRecord(
            stage="signature", unit="http://a/b", kind=PARSE_ERROR, detail="d"
        )
        assert "signature" in str(record) and "http://a/b" in str(record)
        with pytest.raises(Exception):
            record.kind = "other"


class TestLoadPagesQuarantine:
    def _write_sample(self, path):
        good = {"url": "http://x/1", "query": "q", "html": "<html><p>a</p></html>"}
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(good) + "\n")
            handle.write("{this is not json\n")
            handle.write(json.dumps(good) + "\n")

    def test_malformed_line_quarantined_with_record(self, tmp_path):
        path = tmp_path / "pages.jsonl"
        self._write_sample(path)
        with pytest.warns(UserWarning):
            sample = load_pages(path)
        assert len(sample) == 2
        assert sample.skipped == 1
        (record,) = sample.quarantined
        assert record.stage == STAGE_LOAD
        assert record.kind == CORRUPT_RECORD
        assert record.unit.endswith(":2")

    def test_strict_still_raises(self, tmp_path):
        path = tmp_path / "pages.jsonl"
        self._write_sample(path)
        with pytest.raises(ThorError, match="line 2|:2"):
            load_pages(path, strict=True)

    def test_active_report_collects_load_quarantine(self, tmp_path):
        path = tmp_path / "pages.jsonl"
        self._write_sample(path)
        report = RunReportBuilder()
        with activate_report(report):
            with pytest.warns(UserWarning):
                load_pages(path)
        assert len(report.build().quarantined) == 1

    def test_roundtrip_clean_file_has_no_quarantine(self, tmp_path):
        path = tmp_path / "pages.jsonl"
        pages = [
            Page("<html><p>a</p></html>", url="http://x/1", query="q"),
            LabeledPage(
                "<html><p>b</p></html>", url="http://x/2", query="q",
                class_label="normal", gold_pagelet_path="/html/p",
            ),
        ]
        save_pages(pages, path)
        sample = load_pages(path)
        assert sample.skipped == 0 and sample.quarantined == []
        assert isinstance(sample[1], LabeledPage)


class TestFaultPlanDeterminism:
    def test_same_seed_same_destiny(self):
        a = FaultPlan(seed=11, worker_crash_rate=0.3, chunk_error_rate=0.3)
        b = FaultPlan(seed=11, worker_crash_rate=0.3, chunk_error_rate=0.3)
        for chunk in range(10):
            for attempt in (1, 2):
                fa = a.worker_fault("x", chunk, attempt)
                fb = b.worker_fault("x", chunk, attempt)
                assert type(fa) is type(fb)
        assert a.injected == b.injected

    def test_decisions_are_point_local(self):
        # Injection is keyed by point identity, not draw order:
        # querying points in a different order gives the same answers.
        a = FaultPlan(seed=2, page_failure_rate=0.5)
        b = FaultPlan(seed=2, page_failure_rate=0.5)
        units = [f"u{i}" for i in range(20)]
        forward = {u: a.page_fault(u) is not None for u in units}
        backward = {u: b.page_fault(u) is not None for u in reversed(units)}
        assert forward == backward

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(worker_crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(worker_crash_rate=0.7, chunk_error_rate=0.7)

    def test_execution_config_validation(self):
        with pytest.raises(ValueError):
            ExecutionConfig(recovery="maybe")
        with pytest.raises(ValueError):
            ExecutionConfig(chunk_retries=-1)
        with pytest.raises(ValueError):
            ExecutionConfig(stage_timeout_s=0.0)
        with pytest.raises(ValueError):
            ExecutionConfig(min_surviving_fraction=1.5)


class TestRunReport:
    def test_builder_accumulates_and_formats(self):
        builder = RunReportBuilder()
        builder.pages_scanned(10, 8)
        builder.quarantine(
            QuarantineRecord(stage="signature", unit="u", kind=PARSE_ERROR)
        )
        builder.count_chunk_retry(3)
        builder.count_serial_fallback()
        builder.stage_timeout("identify")
        builder.resume_hit("probe")
        report = builder.build()
        assert report.pages_total == 10 and report.pages_surviving == 8
        assert report.chunk_retries == 3
        assert report.serial_fallbacks == 1
        assert report.stage_timeouts == ("identify",)
        assert report.resume_hits == ("probe",)
        assert report.degraded and report.recovered
        text = format_run_report(report)
        assert "8/10" in text and "identify" in text and "probe" in text

    def test_activation_stack_is_reentrant(self):
        outer, inner = RunReportBuilder(), RunReportBuilder()
        assert current_report() is None
        with activate_report(outer):
            assert current_report() is outer
            with activate_report(inner):
                assert current_report() is inner
            with activate_report(None):
                assert current_report() is outer
        assert current_report() is None


class TestRunManifest:
    def _store(self, tmp_path):
        return ArtifactStore(tmp_path / "store")

    def test_roundtrip(self, tmp_path):
        store = self._store(tmp_path)
        manifest = RunManifest(run_id="r1", fingerprint="f1")
        manifest.mark_complete("probe", pages=7)
        save_manifest(store, manifest)
        loaded = load_manifest(store, "r1")
        assert loaded is not None
        assert loaded.stage_complete("probe")
        assert loaded.stage_info("probe") == {"pages": 7}
        assert not loaded.stage_complete("extract")

    def test_missing_and_corrupt_manifests_load_as_none(self, tmp_path):
        store = self._store(tmp_path)
        assert load_manifest(store, "nope") is None
        from repro.resilience.manifest import KIND_RUNS, manifest_key

        store.put_json(KIND_RUNS, manifest_key("r1"), {"run_id": "other"})
        assert load_manifest(store, "r1") is None

    def test_open_manifest_fingerprint_mismatch_raises(self, tmp_path):
        store = self._store(tmp_path)
        save_manifest(store, RunManifest(run_id="r1", fingerprint="old"))
        with pytest.raises(ResumeError):
            open_manifest(store, "r1", "new", resume=True)
        # resume=False discards the old manifest instead.
        fresh = open_manifest(store, "r1", "new", resume=False)
        assert fresh.fingerprint == "new" and fresh.stages == {}

    def test_config_fingerprint_tracks_results_not_execution(self):
        base = ThorConfig(seed=1)
        same_results = ThorConfig(seed=1, execution=ExecutionConfig(n_jobs=4))
        different = ThorConfig(seed=2)
        assert config_fingerprint(base) == config_fingerprint(same_results)
        assert config_fingerprint(base) != config_fingerprint(different)

    def test_probe_checkpoint_roundtrip(self, tmp_path):
        store = self._store(tmp_path)
        pages = [
            Page("<html><p>a</p></html>", url="http://x/1", query="q1"),
            LabeledPage(
                "<html><p>b</p></html>", url="http://x/2", query="q2",
                class_label="normal", gold_pagelet_path="/html/p",
            ),
        ]
        save_probe_checkpoint(store, "r1", pages)
        loaded = load_probe_checkpoint(store, "r1")
        assert loaded is not None and len(loaded) == 2
        assert [p.html for p in loaded] == [p.html for p in pages]
        assert isinstance(loaded[1], LabeledPage)
        assert loaded[1].class_label == "normal"

    def test_corrupt_checkpoint_is_a_miss(self, tmp_path):
        store = self._store(tmp_path)
        from repro.resilience.manifest import KIND_RUNS, checkpoint_key

        assert load_probe_checkpoint(store, "r1") is None
        store.put_json(KIND_RUNS, checkpoint_key("r1", "probe"), [{"nope": 1}])
        assert load_probe_checkpoint(store, "r1") is None
