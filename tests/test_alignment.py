"""Tests for QA-Object attribute alignment."""

from __future__ import annotations

import pytest

from repro import Thor, ThorConfig
from repro.core.alignment import (
    AlignedTable,
    align_objects,
    extract_labeled_fields,
)
from repro.core.page import Page
from repro.core.pagelet import PartitionedPagelet, QAObject, QAPagelet
from repro.core.partitioning import ObjectPartitioner
from repro.deepweb import make_site
from repro.html.paths import node_path


def partition_of(html, container_tag):
    page = Page(html)
    node = page.tree.root.find(container_tag)
    pagelet = QAPagelet(page=page, path=node_path(node), node=node)
    return ObjectPartitioner().partition(pagelet)


class TestAlignObjects:
    def test_uniform_rows_align(self):
        rows = "".join(
            f"<tr><td>title {i}</td><td>seller {i}</td><td>${i}.00</td></tr>"
            for i in range(4)
        )
        part = partition_of(
            f"<html><body><table>{rows}</table></body></html>", "table"
        )
        table = align_objects(part)
        assert table.columns == 3
        assert table.conformity == 1.0
        assert table.column(0) == [f"title {i}" for i in range(4)]
        assert table.column(2) == [f"${i}.00" for i in range(4)]

    def test_rows_normalized_to_columns(self):
        rows = (
            "<tr><td>a1</td><td>b1</td></tr>"
            "<tr><td>a2</td><td>b2</td></tr>"
            "<tr><td>a3</td></tr>"  # short row
        )
        part = partition_of(
            f"<html><body><table>{rows}</table></body></html>", "table"
        )
        table = align_objects(part)
        assert table.columns == 2
        assert table.conformity == pytest.approx(2 / 3)
        rows_out = table.rows()
        assert rows_out[2] == ("a3", "")

    def test_column_out_of_range(self):
        part = partition_of(
            "<html><body><table><tr><td>a</td></tr><tr><td>b</td></tr>"
            "</table></body></html>",
            "table",
        )
        table = align_objects(part)
        with pytest.raises(IndexError):
            table.column(table.columns)

    def test_empty_partition(self):
        page = Page("<html><body><div>x</div></body></html>")
        node = page.tree.root.find("div")
        pagelet = QAPagelet(page=page, path=node_path(node), node=node)
        empty = PartitionedPagelet(pagelet, ())
        table = align_objects(empty)
        assert table.columns == 0
        assert table.records == ()

    def test_on_simulated_site(self):
        # seed 7's ecommerce theme renders results as a table (one
        # cell per field) — the layout positional alignment targets.
        site = make_site("ecommerce", seed=7, error_rate=0.0)
        assert site.theme.result_style == "table"
        result = Thor(ThorConfig(seed=7)).run(site)
        multi = [
            part for part in result.partitioned
            if part.pagelet.page.class_label == "multi"
            and len(part.objects) >= 3
        ]
        assert multi
        table = align_objects(multi[0])
        assert table.columns >= 3
        assert table.conformity >= 0.5
        # Price column exists somewhere: at least one column is all-$.
        assert any(
            all(v.startswith("$") for v in table.column(c) if v)
            and any(table.column(c))
            for c in range(table.columns)
        )


class TestExtractLabeledFields:
    def test_dl_layout(self):
        html = (
            "<html><body><dl>"
            "<dt>Artist</dt><dd>Elvis Presley</dd>"
            "<dt>Genre</dt><dd>Rock</dd>"
            "</dl></body></html>"
        )
        page = Page(html)
        node = page.tree.root.find("dl")
        pagelet = QAPagelet(page=page, path=node_path(node), node=node)
        part = PartitionedPagelet(pagelet, (QAObject(pagelet.path, node),))
        fields = extract_labeled_fields(part)
        assert [(f.label, f.value) for f in fields] == [
            ("Artist", "Elvis Presley"),
            ("Genre", "Rock"),
        ]

    def test_two_cell_table_layout(self):
        html = (
            "<html><body><table>"
            "<tr><td><b>Title</b></td><td>The Atlas</td></tr>"
            "<tr><td><b>Year</b></td><td>1920</td></tr>"
            "</table></body></html>"
        )
        page = Page(html)
        node = page.tree.root.find("table")
        pagelet = QAPagelet(page=page, path=node_path(node), node=node)
        part = PartitionedPagelet(pagelet, (QAObject(pagelet.path, node),))
        fields = extract_labeled_fields(part)
        assert ("Title", "The Atlas") in [(f.label, f.value) for f in fields]

    def test_multi_object_partitions_skipped(self):
        part = partition_of(
            "<html><body><table><tr><td>a</td></tr><tr><td>b</td></tr>"
            "</table></body></html>",
            "table",
        )
        assert len(part.objects) == 2
        assert extract_labeled_fields(part) == []

    def test_no_labels_returns_empty(self):
        html = "<html><body><div><p>plain paragraph</p></div></body></html>"
        page = Page(html)
        node = page.tree.root.find("div")
        pagelet = QAPagelet(page=page, path=node_path(node), node=node)
        part = PartitionedPagelet(pagelet, (QAObject(pagelet.path, node),))
        assert extract_labeled_fields(part) == []


class TestAlignedTableProperties:
    def _table(self, row_lengths):
        rows = "".join(
            "<tr>" + "".join(f"<td>r{i}c{j}</td>" for j in range(n)) + "</tr>"
            for i, n in enumerate(row_lengths)
        )
        part = partition_of(
            f"<html><body><table>{rows}</table></body></html>", "table"
        )
        return align_objects(part)

    def test_rows_always_rectangular(self):
        table = self._table([3, 3, 2, 3, 4])
        for row in table.rows():
            assert len(row) == table.columns

    def test_conformity_fraction(self):
        table = self._table([3, 3, 2])
        assert table.conformity == pytest.approx(2 / 3)

    def test_column_count_is_mode(self):
        table = self._table([2, 4, 4, 4])
        assert table.columns == 4

    def test_mode_tie_prefers_wider(self):
        table = self._table([2, 2, 4, 4])
        assert table.columns == 4

    def test_record_paths_unique(self):
        table = self._table([3, 3, 3])
        paths = [r.object_path for r in table.records]
        assert len(paths) == len(set(paths))
