"""Tests for the HTML parser (tree building + recovery rules)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.html import parse, to_html
from repro.html.tree import ContentNode, TagNode


class TestBasicParsing:
    def test_minimal_document(self):
        tree = parse("<html><body><p>hi</p></body></html>")
        assert tree.root.tag == "html"
        assert tree.root.find("p").text() == "hi"

    def test_root_synthesized_when_missing(self):
        tree = parse("<p>loose</p><p>nodes</p>")
        assert tree.root.tag == "html"
        assert len(tree.root.find_all("p")) == 2

    def test_single_html_root_not_doubled(self):
        tree = parse("<html><body></body></html>")
        assert tree.root.tag == "html"
        assert tree.root.find_all("html") == [tree.root]

    def test_source_size_defaults_to_text_length(self):
        html = "<html><body>x</body></html>"
        assert parse(html).source_size == len(html)

    def test_source_size_override(self):
        assert parse("<p>x</p>", source_size=999).source_size == 999

    def test_url_retained(self):
        assert parse("<p>x</p>", url="http://e.com").url == "http://e.com"

    def test_whitespace_only_text_dropped(self):
        tree = parse("<html><body>  \n  <p>x</p></body></html>")
        body = tree.root.find("body")
        assert all(not isinstance(c, ContentNode) for c in body.children[:1])

    def test_whitespace_kept_when_requested(self):
        tree = parse("<p> </p>", keep_whitespace=True)
        assert tree.root.find("p").children[0].text == " "

    def test_comments_dropped(self):
        tree = parse("<p><!-- hidden -->x</p>")
        assert tree.root.find("p").text() == "x"

    def test_empty_document(self):
        tree = parse("")
        assert tree.root.tag == "html"
        assert tree.root.children == []


class TestVoidElements:
    def test_br_takes_no_children(self):
        tree = parse("<p>a<br>b</p>")
        p = tree.root.find("p")
        assert [c.text for c in p.content_children()] == ["a", "b"]
        assert tree.root.find("br").children == []

    def test_img_no_children(self):
        tree = parse("<div><img src='x'>text</div>")
        div = tree.root.find("div")
        assert div.find("img").children == []
        assert div.text() == "text"

    def test_end_tag_for_void_ignored(self):
        tree = parse("<p>a<br></br>b</p>")
        assert tree.root.find("p").text(" ") == "a b"


class TestImplicitClosing:
    def test_li_closes_li(self):
        tree = parse("<ul><li>a<li>b<li>c</ul>")
        lis = tree.root.find_all("li")
        assert [li.text() for li in lis] == ["a", "b", "c"]
        assert all(li.parent.tag == "ul" for li in lis)

    def test_td_closes_td(self):
        tree = parse("<table><tr><td>a<td>b</tr></table>")
        tds = tree.root.find_all("td")
        assert [td.text() for td in tds] == ["a", "b"]
        assert all(td.parent.tag == "tr" for td in tds)

    def test_tr_closes_tr_and_cell(self):
        tree = parse("<table><tr><td>a<tr><td>b</table>")
        trs = tree.root.find_all("tr")
        assert len(trs) == 2
        assert trs[0].parent.tag == "table"
        assert trs[1].parent.tag == "table"

    def test_p_closes_p(self):
        tree = parse("<p>one<p>two")
        ps = tree.root.find_all("p")
        assert [p.text() for p in ps] == ["one", "two"]

    def test_block_closes_p(self):
        tree = parse("<p>intro<ul><li>x</li></ul>")
        p = tree.root.find("p")
        assert p.find("ul") is None

    def test_nested_table_scoping(self):
        # A <tr> in a nested table must not close the outer table's row.
        tree = parse(
            "<table><tr><td><table><tr><td>in</td></tr></table></td>"
            "<td>out</td></tr></table>"
        )
        outer_table = tree.root.find("table")
        outer_rows = [
            c for c in outer_table.tag_children() if c.tag == "tr"
        ]
        assert len(outer_rows) == 1
        outer_cells = outer_rows[0].tag_children()
        assert len(outer_cells) == 2
        assert outer_cells[1].text() == "out"

    def test_dt_dd_alternation(self):
        tree = parse("<dl><dt>k1<dd>v1<dt>k2<dd>v2</dl>")
        dl = tree.root.find("dl")
        tags = [c.tag for c in dl.tag_children()]
        assert tags == ["dt", "dd", "dt", "dd"]

    def test_option_closes_option(self):
        tree = parse("<select><option>a<option>b</select>")
        options = tree.root.find_all("option")
        assert [o.text() for o in options] == ["a", "b"]

    def test_nested_list_scoping(self):
        tree = parse("<ul><li>a<ul><li>a1</li></ul></li><li>b</li></ul>")
        outer = tree.root.find("ul")
        outer_items = [c for c in outer.tag_children() if c.tag == "li"]
        assert len(outer_items) == 2


class TestEndTagRecovery:
    def test_unmatched_end_tag_dropped(self):
        tree = parse("<div>a</span>b</div>")
        assert tree.root.find("div").text(" ") == "a b"

    def test_end_tag_closes_intervening(self):
        tree = parse("<div><b>bold</div>after")
        div = tree.root.find("div")
        assert div.find("b").text() == "bold"
        # "after" must be outside the div.
        assert "after" not in div.text()

    def test_unclosed_elements_closed_at_eof(self):
        tree = parse("<div><p>x")
        assert tree.root.find("p").text() == "x"


class TestRoundTrip:
    CASES = [
        "<html><body><p>a</p></body></html>",
        "<html><body><table><tr><td>a</td><td>b</td></tr></table></body></html>",
        "<html><ul><li>one</li><li>two</li></ul></html>",
        '<html><a href="x.html">link</a></html>',
        "<html><div><div><div>deep</div></div></div></html>",
    ]

    @pytest.mark.parametrize("html", CASES)
    def test_parse_serialize_fixpoint(self, html):
        once = to_html(parse(html))
        twice = to_html(parse(once))
        assert once == twice

    @pytest.mark.parametrize("html", CASES)
    def test_well_formed_preserved(self, html):
        assert to_html(parse(html)) == html


@st.composite
def html_trees(draw, depth=0):
    """Random small well-formed HTML fragments."""
    if depth >= 3 or draw(st.booleans()):
        text = draw(st.text(alphabet="abc ", min_size=1, max_size=6))
        return text.replace(" ", "x")  # keep non-whitespace
    tag = draw(st.sampled_from(["div", "span", "b", "i", "em"]))
    children = draw(st.lists(html_trees(depth=depth + 1), max_size=3))
    return f"<{tag}>{''.join(children)}</{tag}>"


class TestParserProperties:
    @given(st.text(max_size=300))
    def test_never_raises(self, html):
        parse(html)

    @given(html_trees())
    def test_wellformed_roundtrip_stable(self, fragment):
        html = f"<html>{fragment}</html>"
        once = to_html(parse(html))
        assert to_html(parse(once)) == once

    @given(st.text(alphabet="<>/abtd ", max_size=120))
    def test_malformed_produces_tree(self, html):
        tree = parse(html)
        assert tree.root.tag == "html"
        # Every node is reachable and parented consistently.
        for node in tree.iter():
            if node is not tree.root:
                assert node.parent is not None
                assert node in node.parent.children


class TestRawTextElements:
    def test_title_content_preserved(self):
        tree = parse("<html><head><title>a < b & c</title></head></html>")
        assert tree.root.find("title").text() == "a < b & c"

    def test_textarea_markup_not_parsed(self):
        tree = parse("<html><body><textarea><b>raw</b></textarea></body></html>")
        textarea = tree.root.find("textarea")
        assert textarea.find("b") is None
        assert "<b>raw</b>" in textarea.text()

    def test_script_content_single_text_node(self):
        tree = parse("<html><body><script>if (a<b) x();</script></body></html>")
        script = tree.root.find("script")
        assert len(script.children) == 1
        assert script.children[0].text == "if (a<b) x();"


class TestDeepDocuments:
    def test_very_deep_nesting_parses(self):
        html = "<html>" + "<div>" * 500 + "x" + "</div>" * 500 + "</html>"
        tree = parse(html)
        assert tree.root.find_all("div")[0] is not None
        assert tree.size() == 502  # html + 500 divs + 1 text leaf

    def test_wide_document_parses(self):
        html = "<html><body>" + "<p>x</p>" * 2000 + "</body></html>"
        tree = parse(html)
        assert len(tree.root.find_all("p")) == 2000
