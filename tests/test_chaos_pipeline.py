"""End-to-end chaos tests: the pipeline under injected faults.

The invariants under test (ISSUE: fault-tolerant pipeline runtime):

- quarantining up to k injected-bad pages never changes the QA-Pagelet
  selected for the surviving pages, on any of the seven deep-web
  genres — degradation is *local*;
- exceeding ``min_surviving_fraction`` aborts with
  :class:`~repro.errors.ExtractionError` instead of extracting a
  template from junk;
- under *recoverable* faults (worker crashes, chunk errors, torn
  artifact writes) a seeded run's result digest is bitwise identical
  to the fault-free serial run, and the run report accounts for every
  injected event;
- a resumed run reproduces the identical digest and accounts its
  resume hits.
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings, strategies as st

from repro.config import ExecutionConfig, ThorConfig
from repro.core.page import Page
from repro.core.thor import Thor
from repro.deepweb import generate_corpus, make_site
from repro.deepweb.domains import DOMAINS
from repro.deepweb.templates import mutate_page_text
from repro.errors import ExtractionError, HtmlParseError, ResumeError
from repro.io.export import result_digest
from repro.resilience import FaultPlan
from repro.resilience.quarantine import INJECTED, PARSE_ERROR
from repro.vsm.matrix import HAVE_NUMPY

ALL_DOMAINS = sorted(DOMAINS)  # all seven deep-web genres


class ExplodingPage(Page):
    """A page whose signature analysis always blows up."""

    def tag_counts(self):
        raise HtmlParseError("injected pathological page")


def _bad_page(index: int) -> ExplodingPage:
    return ExplodingPage(
        "<html><body><p>bad</p></body></html>", url=f"http://bad/{index}"
    )


def _site_pages(domain: str, n: int = 24) -> list[Page]:
    sample = generate_corpus(n_sites=1, seed=9, domains=[domain])[0]
    return list(sample.pages)[:n]


_BASELINES: dict[str, tuple] = {}


def _baseline(domain: str) -> tuple:
    """Memoized fault-free extraction over the genre's clean pages."""
    if domain not in _BASELINES:
        pages = _site_pages(domain)
        result = Thor(ThorConfig(seed=1)).extract(pages)
        _BASELINES[domain] = (
            pages,
            result_digest(result),
            [(p.page.url, p.path) for p in result.pagelets],
        )
    return _BASELINES[domain]


class TestQuarantineDegradation:
    @settings(max_examples=10, deadline=None)
    @given(
        domain=st.sampled_from(ALL_DOMAINS),
        positions=st.lists(
            st.integers(min_value=0, max_value=24), min_size=1, max_size=3,
            unique=True,
        ),
    )
    def test_bad_pages_never_change_survivor_pagelets(self, domain, positions):
        pages, clean_digest, clean_pagelets = _baseline(domain)
        injected = list(pages)
        for offset, position in enumerate(sorted(positions)):
            injected.insert(position + offset, _bad_page(position))
        thor = Thor(ThorConfig(seed=1))
        result = thor.extract(injected)
        # The bad pages are quarantined; the survivors — exactly the
        # clean sample — produce bitwise-identical extraction output.
        assert [p.html for p in result.pages] == [p.html for p in pages]
        assert result_digest(result) == clean_digest
        assert [(p.page.url, p.path) for p in result.pagelets] == clean_pagelets
        report = result.report
        assert len(report.quarantined) == len(positions)
        assert all(r.kind == PARSE_ERROR for r in report.quarantined)
        assert report.pages_total == len(injected)
        assert report.pages_surviving == len(pages)

    @pytest.mark.parametrize("domain", ALL_DOMAINS)
    def test_every_genre_survives_one_bad_page(self, domain):
        pages, clean_digest, _ = _baseline(domain)
        result = Thor(ThorConfig(seed=1)).extract([_bad_page(0)] + list(pages))
        assert result_digest(result) == clean_digest

    def test_exceeding_min_surviving_fraction_raises(self):
        pages = _site_pages("ecommerce", n=4)
        junk = [_bad_page(i) for i in range(6)]
        with pytest.raises(ExtractionError, match="survived"):
            Thor(ThorConfig(seed=1)).extract(pages + junk)

    def test_all_pages_bad_raises(self):
        with pytest.raises(ExtractionError):
            Thor(ThorConfig(seed=1)).extract([_bad_page(i) for i in range(3)])

    def test_threshold_is_configurable(self):
        pages = _site_pages("ecommerce", n=4)
        junk = [_bad_page(i) for i in range(6)]
        lenient = ThorConfig(
            seed=1, execution=ExecutionConfig(min_surviving_fraction=0.25)
        )
        result = Thor(lenient).extract(pages + junk)
        assert len(result.pages) == 4


class TestChaosDigestInvariant:
    @pytest.mark.parametrize("domain", ["jobs", "movies"])
    def test_recoverable_faults_keep_digest_identical(self, domain, tmp_path):
        # Fault-free serial reference.
        reference = Thor(ThorConfig(seed=5)).run(
            make_site(domain, seed=5, records=60)
        )
        plan = FaultPlan(
            seed=5,
            worker_crash_rate=0.4,
            chunk_error_rate=0.3,
            artifact_corrupt_rate=0.3,
        )
        config = ThorConfig(
            seed=5,
            execution=ExecutionConfig(n_jobs=2, cache_dir=str(tmp_path)),
        )
        thor = Thor(config, fault_plan=plan)
        result = thor.run(make_site(domain, seed=5, records=60))
        assert result_digest(result) == result_digest(reference)
        report = thor.report()
        # The plan really injected faults, and the report accounts for
        # them: every worker-level fault implies recovery activity.
        assert sum(report.faults_injected.values()) > 0
        worker_level = report.faults_injected.get("worker_crash", 0) + \
            report.faults_injected.get("chunk_error", 0)
        if worker_level:
            assert report.chunk_retries + report.serial_fallbacks > 0
        assert not report.quarantined

    def test_injected_page_faults_degrade_to_survivor_run(self):
        pages = _site_pages("library")
        plan = FaultPlan(seed=3, page_failure_rate=0.2)
        thor = Thor(ThorConfig(seed=1), fault_plan=plan)
        result = thor.extract(pages)
        report = result.report
        assert len(report.quarantined) == plan.injected["page_fault"] > 0
        assert all(r.kind == INJECTED for r in report.quarantined)
        # Dropping the same pages up front, fault-free, is equivalent.
        quarantined_units = {r.unit for r in report.quarantined}
        survivors = [p for p in pages if p.url not in quarantined_units]
        clean = Thor(ThorConfig(seed=1)).extract(survivors)
        assert result_digest(result) == result_digest(clean)


class TestResumableRuns:
    def test_resume_reproduces_digest_and_skips_probe(self, tmp_path):
        config = ThorConfig(
            seed=4, execution=ExecutionConfig(cache_dir=str(tmp_path))
        )
        site = lambda: make_site("travel", seed=4, records=60)  # noqa: E731
        first = Thor(config).run(site(), run_id="r1")
        resumed_thor = Thor(config)
        second = resumed_thor.run(site(), run_id="r1", resume=True)
        assert result_digest(first) == result_digest(second)
        # The resumed run restores both checkpoints: the probe sample
        # and the Phase-1 cluster fit.
        assert resumed_thor.report().resume_hits == ("probe", "cluster")

    def test_resume_under_different_config_refuses(self, tmp_path):
        execution = ExecutionConfig(cache_dir=str(tmp_path))
        site = make_site("travel", seed=4, records=60)
        Thor(ThorConfig(seed=4, execution=execution)).run(site, run_id="r1")
        with pytest.raises(ResumeError, match="configuration"):
            Thor(ThorConfig(seed=5, execution=execution)).run(
                make_site("travel", seed=5, records=60),
                run_id="r1",
                resume=True,
            )

    def test_run_id_without_store_refuses(self):
        config = ThorConfig(
            seed=4, execution=ExecutionConfig(artifact_cache="off")
        )
        with pytest.raises(ResumeError, match="cache"):
            Thor(config).run(
                make_site("travel", seed=4, records=60), run_id="r1"
            )

    def test_resume_with_no_prior_checkpoint_just_runs(self, tmp_path):
        config = ThorConfig(
            seed=4, execution=ExecutionConfig(cache_dir=str(tmp_path))
        )
        thor = Thor(config)
        result = thor.run(
            make_site("travel", seed=4, records=60), run_id="new", resume=True
        )
        assert result.pagelets
        assert thor.report().resume_hits == ()


class TestCliChaosSmoke:
    def test_run_resume_report_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "result.json")
        base = [
            "run", "--domain", "music", "--seed", "2", "--records", "40",
            "--cache-dir", str(tmp_path / "cache"), "--run-id", "smoke",
            "--out", out, "--report",
            "--chaos-worker-crash-rate", "0.3", "--jobs", "2",
        ]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert main(base + ["--resume"]) == 0
        second = capsys.readouterr().out

        def digest_line(text):
            return next(
                line for line in text.splitlines()
                if line.startswith("result-digest:")
            )

        assert digest_line(first) == digest_line(second)
        assert "run report:" in first and "run report:" in second
        assert "resume-hits=2" in second  # probe + cluster checkpoints

    def test_resume_without_run_id_is_an_error(self, capsys):
        from repro.cli import main

        assert main(["run", "--resume"]) == 2
        assert "requires --run-id" in capsys.readouterr().err


class _FailFirstIdentifier:
    """Raises on the first cluster, delegates afterwards — so exactly
    one cluster is quarantined at fit time."""

    def __init__(self, inner):
        self._inner = inner
        self.calls = 0

    def identify(self, pages):
        self.calls += 1
        if self.calls == 1:
            raise ExtractionError("injected: cluster analysis failed")
        return self._inner.identify(pages)


class _CountingIdentifier:
    def __init__(self, inner):
        self._inner = inner
        self.calls = 0

    def identify(self, pages):
        self.calls += 1
        return self._inner.identify(pages)


@pytest.mark.skipif(not HAVE_NUMPY, reason="model reuse needs numpy")
class TestIncrementalChaos:
    """Drift edge cases (ISSUE: incremental re-extraction): an empty
    delta must do zero Phase-2 work, stored quarantines must replay
    without re-running the failing analysis, and a torn model bundle is
    a counted miss that falls back to a full refit — never an
    exception."""

    def _config(self, cache_dir: str) -> ThorConfig:
        return ThorConfig(
            seed=1, execution=ExecutionConfig(cache_dir=str(cache_dir))
        )

    def _seed(self, thor: Thor, pages):
        """Full fit over ``pages`` with the model published — what a
        first ``run()`` leaves behind for the next crawl."""
        result = thor.partition(thor.extract(pages))
        assert thor.persist_model(result)
        return result

    def test_empty_delta_is_pure_replay_with_zero_phase2_work(self, tmp_path):
        pages = _site_pages("jobs")
        config = self._config(tmp_path)
        seeded = self._seed(Thor(config), pages)
        replay = Thor(config)
        spy = _CountingIdentifier(replay._identifier)
        replay._identifier = spy
        result = replay.refresh(pages)
        assert spy.calls == 0
        assert result_digest(result) == result_digest(seeded)
        counters = replay.report().incremental
        assert counters.get("skipped", 0) == len(result.pages)
        assert counters.get("assigned", 0) == 0
        assert counters.get("refit", 0) == 0

    def test_quarantined_cluster_replays_without_rerunning(self, tmp_path):
        pages = _site_pages("movies")
        config = self._config(tmp_path)
        seeder = Thor(config)
        seeder._identifier = _FailFirstIdentifier(seeder._identifier)
        seeded = self._seed(seeder, pages)
        seed_quarantine = [
            (r.kind, r.unit) for r in seeded.report.quarantined
        ]
        assert seed_quarantine  # the injected failure really landed
        replay = Thor(config)
        spy = _CountingIdentifier(replay._identifier)
        replay._identifier = spy
        result = replay.refresh(pages)
        # The stored quarantine replays verbatim; the failing analysis
        # (and every healthy one) is not re-run.
        assert spy.calls == 0
        assert result_digest(result) == result_digest(seeded)
        assert [
            (r.kind, r.unit) for r in result.report.quarantined
        ] == seed_quarantine

    def test_torn_model_bundle_is_a_counted_miss_not_an_error(self, tmp_path):
        pages = _site_pages("library")
        config = self._config(tmp_path)
        seeded = self._seed(Thor(config), pages)
        bundles = [
            path
            for path in (tmp_path / "models").rglob("*")
            if path.is_file()
        ]
        assert bundles
        for path in bundles:
            payload = path.read_bytes()
            path.write_bytes(payload[: len(payload) // 2])
        thor = Thor(config)
        result = thor.refresh(pages)
        counters = thor.report().incremental
        assert counters.get("model_misses", 0) == 1
        assert counters.get("refit", 0) == len(result.pages)
        assert counters.get("skipped", 0) == 0
        assert result_digest(result) == result_digest(seeded)

    def test_chaos_refresh_keeps_digest_identical(self, tmp_path):
        pages = _site_pages("travel")
        config = ThorConfig(
            seed=1,
            execution=ExecutionConfig(
                n_jobs=2, cache_dir=str(tmp_path / "warm")
            ),
        )
        self._seed(Thor(config), pages)
        mutated = [
            Page(mutate_page_text(p.html, seed=i), url=p.url, query=p.query)
            if i < 3
            else p
            for i, p in enumerate(pages)
        ]
        # Fault-free cold reference over the mutated corpus.
        cold = Thor(ThorConfig(seed=1))
        reference = cold.partition(cold.extract(mutated))
        plan = FaultPlan(
            seed=7,
            worker_crash_rate=0.4,
            chunk_error_rate=0.3,
            artifact_corrupt_rate=0.3,
        )
        thor = Thor(config, fault_plan=plan)
        result = thor.refresh(mutated)
        assert result_digest(result) == result_digest(reference)
