"""Units for the crawl-frontier building blocks.

Covers URL canonicalization, robots-style exclusion rules, the
prioritized/deduplicating :class:`Frontier` (including its checkpoint
round-trip), the politeness-lane state carry across
:class:`~repro.probe.budget.ProbeBudget` instances, and the
fingerprint-guarded crawl checkpoint. The crawl *service* invariants
live in ``tests/test_crawl_service.py``.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings, strategies as st

from repro.artifacts.store import ArtifactStore
from repro.errors import ResumeError
from repro.frontier.checkpoint import (
    KIND_FRONTIERS,
    crawl_fingerprint,
    crawl_state_key,
    load_crawl_state,
    save_crawl_state,
)
from repro.frontier.frontier import Frontier
from repro.frontier.robots import ExclusionRules, parse_robots
from repro.frontier.urls import canonicalize_url, site_of
from repro.config import CrawlConfig
from repro.probe.budget import ProbeBudget, bucket_respected


class TestCanonicalizeUrl:
    def test_relative_resolves_against_base(self):
        assert (
            canonicalize_url("page/2", base="http://x.org/dir/index.html")
            == "http://x.org/dir/page/2"
        )

    def test_parent_segments_collapse(self):
        assert (
            canonicalize_url("../up", base="http://x.org/a/b/c")
            == "http://x.org/a/up"
        )

    def test_fragment_dropped(self):
        assert (
            canonicalize_url("http://x.org/a#section") == "http://x.org/a"
        )

    def test_fragment_only_is_none(self):
        assert canonicalize_url("#top", base="http://x.org/a") is None

    @pytest.mark.parametrize(
        "href",
        [
            "javascript:void(0)",
            "JavaScript:alert(1)",
            "mailto:a@b.org",
            "tel:+1555",
            "data:text/html,hi",
            "",
            "   ",
        ],
    )
    def test_pseudo_links_are_none(self, href):
        assert canonicalize_url(href, base="http://x.org/") is None

    def test_relative_without_base_is_none(self):
        assert canonicalize_url("page/2") is None

    def test_scheme_and_host_lowercased(self):
        assert (
            canonicalize_url("HTTP://Shop.Example.COM/A")
            == "http://shop.example.com/A"
        )

    def test_default_port_stripped(self):
        assert canonicalize_url("http://x.org:80/a") == "http://x.org/a"
        assert canonicalize_url("https://x.org:443/a") == "https://x.org/a"
        assert canonicalize_url("http://x.org:8080/a") == "http://x.org:8080/a"

    def test_empty_path_becomes_slash(self):
        assert canonicalize_url("http://x.org") == "http://x.org/"

    def test_query_preserved(self):
        assert (
            canonicalize_url("http://x.org/s?q=a&p=2")
            == "http://x.org/s?q=a&p=2"
        )

    def test_non_http_scheme_is_none(self):
        assert canonicalize_url("ftp://x.org/file") is None

    def test_percent_escaped_unreserved_decodes(self):
        # RFC 3986 §2.3: %41 is 'A', %7E is '~' — same resource, so the
        # frontier's seen-set must collapse the spellings.
        assert (
            canonicalize_url("http://x.org/%7Euser/%41lbum")
            == "http://x.org/~user/Album"
        )
        assert canonicalize_url("http://x.org/%7euser") == canonicalize_url(
            "http://x.org/~user"
        )

    def test_percent_reserved_escapes_kept_with_lower_hex(self):
        # Reserved characters stay escaped (decoding %2F would change
        # the path structure), but the hex case is normalized.
        assert (
            canonicalize_url("http://x.org/a%2Fb?q=%5B1%5D")
            == "http://x.org/a%2fb?q=%5b1%5d"
        )

    def test_percent_malformed_sequences_untouched(self):
        assert canonicalize_url("http://x.org/50%off") == "http://x.org/50%off"
        assert canonicalize_url("http://x.org/a%2") == "http://x.org/a%2"
        assert (
            canonicalize_url("http://x.org/50%25off")
            == "http://x.org/50%25off"
        )

    def test_percent_spellings_dedup_to_one_url(self):
        spellings = [
            "http://x.org/%7Euser?q=%41",
            "http://x.org/%7euser?q=A",
            "http://x.org/~user?q=%41",
        ]
        assert len({canonicalize_url(u) for u in spellings}) == 1

    def test_idempotent(self):
        url = canonicalize_url("Page/2?q=a#f", base="HTTP://X.org:80/d/i")
        assert canonicalize_url(url) == url
        escaped = canonicalize_url("http://x.org/%7E%2F%3f")
        assert canonicalize_url(escaped) == escaped

    def test_site_of(self):
        assert site_of("http://shop.example.com/s?q=a") == "shop.example.com"
        assert site_of("http://x.org:8080/a") == "x.org:8080"


class TestExclusionRules:
    def test_empty_allows_everything(self):
        assert ExclusionRules().allows("http://x.org/anything")

    def test_any_host_path_prefix(self):
        rules = ExclusionRules(["/private"])
        assert not rules.allows("http://a.org/private/x")
        assert not rules.allows("http://b.org/private")
        assert rules.allows("http://a.org/public")

    def test_host_scoped_path(self):
        rules = ExclusionRules(["shop.example.com:/admin"])
        assert not rules.allows("http://shop.example.com/admin/users")
        assert rules.allows("http://other.org/admin")

    def test_whole_host(self):
        rules = ExclusionRules(["bad.example.com"])
        assert not rules.allows("http://bad.example.com/")
        assert not rules.allows("http://bad.example.com/any/path")
        assert rules.allows("http://good.example.com/")

    def test_star_host_means_any(self):
        rules = ExclusionRules(["*:/cgi-bin/"])
        assert not rules.allows("http://a.org/cgi-bin/q")
        assert rules.allows("http://a.org/cgi")

    def test_bad_pattern_raises(self):
        with pytest.raises(ValueError):
            ExclusionRules(["host:relative-path"])
        with pytest.raises(ValueError):
            ExclusionRules([""])

    def test_parse_robots(self):
        rules = parse_robots(
            "# comment\n"
            "User-agent: googlebot\n"
            "Disallow: /only-for-google\n"
            "\n"
            "User-agent: *\n"
            "Disallow: /search\n"
            "Disallow:\n"
            "Disallow: /cgi-bin/ # trailing comment\n"
        )
        assert not rules.allows("http://x.org/search?q=a")
        assert not rules.allows("http://x.org/cgi-bin/q")
        assert rules.allows("http://x.org/only-for-google")

    def test_parse_robots_host_scoped(self):
        rules = parse_robots(
            "User-agent: *\nDisallow: /search\n", host="x.org"
        )
        assert not rules.allows("http://x.org/search")
        assert rules.allows("http://other.org/search")


class TestFrontier:
    def test_add_canonicalizes_and_dedups(self):
        frontier = Frontier()
        assert frontier.add("http://x.org/a#one")
        assert not frontier.add("http://X.ORG:80/a#two")
        assert frontier.dedup_hits == 1
        assert len(frontier) == 1

    def test_invalid_counted(self):
        frontier = Frontier()
        assert not frontier.add("javascript:void(0)")
        assert not frontier.add("relative/no-base")
        assert frontier.invalid == 2

    def test_excluded_counted_and_not_admitted(self):
        frontier = Frontier(exclusions=ExclusionRules(["/private"]))
        assert not frontier.add("http://x.org/private/a")
        assert frontier.excluded == 1
        assert len(frontier) == 0
        # Excluded URLs are not marked seen: lifting the rule later
        # would admit them.
        assert "http://x.org/private/a" not in frontier.seen

    def test_relative_add_with_base(self):
        frontier = Frontier()
        assert frontier.add("page/2", base="http://x.org/dir/", depth=3)
        item = frontier.pop()
        assert item.url == "http://x.org/dir/page/2"
        assert item.depth == 3
        assert item.site == "x.org"

    def test_pop_order_depth_then_fifo(self):
        frontier = Frontier()
        frontier.add("http://x.org/d1-first", depth=1)
        frontier.add("http://x.org/d0", depth=0)
        frontier.add("http://x.org/d1-second", depth=1)
        urls = [frontier.pop().url for _ in range(3)]
        assert urls == [
            "http://x.org/d0",
            "http://x.org/d1-first",
            "http://x.org/d1-second",
        ]

    def test_priority_beats_depth(self):
        frontier = Frontier()
        frontier.add("http://x.org/shallow", depth=0, priority=0)
        frontier.add("http://x.org/deep-hot", depth=5, priority=2)
        assert frontier.pop().url == "http://x.org/deep-hot"

    def test_pop_batch_and_exhaustion(self):
        frontier = Frontier()
        for i in range(5):
            frontier.add(f"http://x.org/{i}")
        batch = frontier.pop_batch(3)
        assert [item.url for item in batch] == [
            "http://x.org/0",
            "http://x.org/1",
            "http://x.org/2",
        ]
        assert len(frontier.pop_batch(10)) == 2
        assert frontier.pop() is None
        assert not frontier

    def test_state_round_trip_preserves_pop_order(self):
        frontier = Frontier()
        for i in range(8):
            frontier.add(f"http://x.org/{i}", depth=i % 3, priority=i % 2)
        frontier.pop()  # make counters nontrivial
        restored = Frontier.from_state(frontier.to_state())
        assert restored.enqueued == 8
        assert restored.popped == 1
        expected = [item.url for item in frontier.pop_batch(10)]
        actual = [item.url for item in restored.pop_batch(10)]
        assert actual == expected

    def test_state_round_trip_preserves_seen(self):
        frontier = Frontier()
        frontier.add("http://x.org/a")
        restored = Frontier.from_state(frontier.to_state())
        assert not restored.add("http://x.org/a")
        assert restored.dedup_hits == 1

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=30))
    def test_state_round_trip_property(self, keys):
        frontier = Frontier()
        for key in keys:
            frontier.add(
                f"http://s{key % 3}.org/{key}", depth=key % 4,
                priority=key % 2,
            )
        restored = Frontier.from_state(frontier.to_state())
        assert [item.url for item in restored.pop_batch(100)] == [
            item.url for item in frontier.pop_batch(100)
        ]


class TestBudgetStateCarry:
    def _drain(self, budget, n):
        async def go():
            for _ in range(n):
                await budget.acquire()

        asyncio.run(go())

    def test_waits_counter(self):
        budget = ProbeBudget(rate=200.0, burst=1)
        self._drain(budget, 4)
        assert budget.waits >= 3
        assert budget.granted == 4

    def test_spliced_series_respects_bucket(self):
        # Simulate a politeness lane: several budgets in sequence, each
        # seeded from the previous one's final state; the combined
        # grant series must satisfy the single-bucket invariant.
        rate, burst = 400.0, 2
        grants: list[float] = []
        tokens, last_refill = None, None
        for _ in range(4):
            budget = ProbeBudget(
                rate, burst, initial_tokens=tokens, last_refill=last_refill
            )
            self._drain(budget, 3)
            grants.extend(budget.grant_times)
            tokens, last_refill = budget.tokens, budget.last_refill
        assert grants == sorted(grants)
        assert bucket_respected(grants, rate, burst)

    def test_fresh_budgets_without_carry_overshoot(self):
        # The control: re-minting a full bucket per batch hands out
        # burst tokens each time — the spliced series violates the
        # bucket invariant, which is exactly why lanes carry state.
        rate, burst = 50.0, 2
        grants: list[float] = []
        for _ in range(4):
            budget = ProbeBudget(rate, burst)
            self._drain(budget, 2)
            grants.extend(budget.grant_times)
        assert not bucket_respected(grants, rate, burst)

    def test_initial_tokens_clamped_to_burst(self):
        budget = ProbeBudget(10.0, 2, initial_tokens=99.0)
        assert budget.tokens == 2.0


class TestCrawlCheckpoint:
    @pytest.fixture
    def store(self, tmp_path):
        return ArtifactStore(tmp_path / "store")

    def test_missing_is_none(self, store):
        assert load_crawl_state(store, "nope", "fp") is None

    def test_round_trip(self, store):
        fingerprint = crawl_fingerprint(
            ("http://x.org/",), CrawlConfig(), seed=3
        )
        save_crawl_state(
            store,
            "c1",
            {"fingerprint": fingerprint, "corpus": [], "attempted": 0},
        )
        state = load_crawl_state(store, "c1", fingerprint)
        assert state["attempted"] == 0
        assert state["crawl_id"] == "c1"

    def test_fingerprint_mismatch_raises(self, store):
        save_crawl_state(store, "c1", {"fingerprint": "old"})
        with pytest.raises(ResumeError, match="different crawl definition"):
            load_crawl_state(store, "c1", "new")

    def test_corrupt_record_is_miss(self, store, tmp_path):
        save_crawl_state(store, "c1", {"fingerprint": "fp"})
        path = store._path(KIND_FRONTIERS, crawl_state_key("c1"), "json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"torn')
        assert load_crawl_state(store, "c1", "fp") is None

    def test_fingerprint_sensitivity(self):
        seeds = ("http://x.org/",)
        base = crawl_fingerprint(seeds, CrawlConfig(), seed=1)
        # Corpus-shaping knobs change the fingerprint...
        assert base != crawl_fingerprint(
            seeds, CrawlConfig(max_pages=10), seed=1
        )
        assert base != crawl_fingerprint(
            seeds, CrawlConfig(exclude=("/x",)), seed=1
        )
        assert base != crawl_fingerprint(seeds, CrawlConfig(), seed=2)
        assert base != crawl_fingerprint(("http://y.org/",), CrawlConfig(), 1)
        # ...pacing knobs do not: a resumed invocation may repace.
        assert base == crawl_fingerprint(
            seeds, CrawlConfig(rate=5.0, burst=9), seed=1
        )
        assert base == crawl_fingerprint(
            seeds,
            CrawlConfig(max_pages_per_run=3, checkpoint_every=7),
            seed=1,
        )
