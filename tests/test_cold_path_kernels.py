"""Cold-path kernel equivalence: batched distances, columnar transport,
streaming pipeline.

Three families of invariants, all bitwise:

- the batched **editdist** kernel and the vectorized **quad**ruple
  distance matrices equal the scalar python oracles element for
  element (hypothesis-driven, plus all seven synthetic domains and the
  NaN/empty-path edges);
- columnar record transport round-trips records value-for-value and
  produces identical fan-out results to pickle transport, at a
  fraction of the serialized bytes;
- a streaming ``Thor.run`` digests identically to the barriered run,
  fault-free and under seeded chaos.
"""

from __future__ import annotations

import math
import pickle

import pytest

from hypothesis import given, settings, strategies as st

from repro.cluster.editdist import (
    batch_normalized_levenshtein,
    normalized_levenshtein,
)
from repro.config import ExecutionConfig, ProbeConfig, ThorConfig
from repro.core.single_page import (
    CandidateRecord,
    candidate_records_for_cluster,
)
from repro.core.subtree_sets import (
    SubtreeCandidate,
    clear_quad_matrix_memo,
    find_common_subtree_sets,
    make_candidate_from_record,
    quad_matrix_memo_stats,
    set_quad_matrix_memo_limit,
    shape_distance,
    shape_distance_matrix,
)
from repro.deepweb import generate_corpus, make_site
from repro.deepweb.domains import DOMAINS
from repro.html.metrics import SubtreeShape
from repro.html.paths import TagCodec
from repro.io.export import result_digest

ALL_DOMAINS = sorted(DOMAINS)


@pytest.fixture(autouse=True)
def fresh_kernel_state():
    from repro.runtime import clear_artifact_store_registry, clear_space_cache

    def reset():
        clear_space_cache()
        clear_artifact_store_registry()
        set_quad_matrix_memo_limit(None)
        clear_quad_matrix_memo()

    reset()
    yield reset
    reset()


def cluster_pages(domain: str, seed: int = 2, n: int = 8):
    sample = generate_corpus(n_sites=1, seed=seed, domains=[domain])[0]
    return list(sample.pages)[:n]


def domain_candidates(domain: str, n: int = 6) -> list[SubtreeCandidate]:
    """Real candidates (one flat list) from one domain's pages."""
    records = candidate_records_for_cluster(cluster_pages(domain, n=n))
    codec = TagCodec(1)
    return [
        make_candidate_from_record(i, record, codec)
        for i, page_records in enumerate(records)
        for record in page_records
    ]


def quad_candidate(path: str, fanout: int, depth: int, nodes: int):
    return SubtreeCandidate(
        page_index=0,
        node=None,
        shape=SubtreeShape(path="p", fanout=fanout, depth=depth, nodes=nodes),
        code_path=path,
    )


# ---------------------------------------------------------------------------
# Batched path edit distance (the editdist kernel)
# ---------------------------------------------------------------------------

strings = st.text(
    alphabet=st.sampled_from("abtdxyz αβ🦉"), min_size=0, max_size=12
)


class TestBatchedEditdistKernel:
    @settings(max_examples=200, deadline=None)
    @given(pairs=st.lists(st.tuples(strings, strings), max_size=24))
    def test_editdist_backends_match_oracle_bitwise(self, pairs):
        a_strings = [a for a, _ in pairs]
        b_strings = [b for _, b in pairs]
        oracle = [
            normalized_levenshtein(a, b) for a, b in zip(a_strings, b_strings)
        ]
        for backend in ("python", "numpy"):
            batched = batch_normalized_levenshtein(
                a_strings, b_strings, backend=backend
            )
            assert batched == oracle

    def test_editdist_empty_and_equal_fast_paths(self):
        out = batch_normalized_levenshtein(
            ["", "", "abc", "same"], ["", "xy", "", "same"], backend="numpy"
        )
        assert out == [0.0, 1.0, 1.0, 0.0]

    def test_editdist_batch_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="batch length mismatch"):
            batch_normalized_levenshtein(["a"], ["a", "b"])

    @pytest.mark.parametrize("domain", ALL_DOMAINS)
    def test_editdist_matches_oracle_on_domain_paths(self, domain):
        paths = [c.code_path for c in domain_candidates(domain)]
        assert paths
        a_strings = paths
        b_strings = list(reversed(paths))
        assert batch_normalized_levenshtein(
            a_strings, b_strings, backend="numpy"
        ) == [
            normalized_levenshtein(a, b)
            for a, b in zip(a_strings, b_strings)
        ]


# ---------------------------------------------------------------------------
# Vectorized quadruple distance matrices (the quad kernel)
# ---------------------------------------------------------------------------

quads = st.tuples(
    st.text(alphabet="abtd", max_size=6),  # code path
    st.integers(min_value=0, max_value=40),  # fanout
    st.integers(min_value=0, max_value=20),  # depth
    st.integers(min_value=1, max_value=200),  # nodes
)

weight_values = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


def assert_quad_matrix_matches_scalar(a_cands, b_cands, weights):
    matrix = shape_distance_matrix(a_cands, b_cands, weights)
    for i, a in enumerate(a_cands):
        for j, b in enumerate(b_cands):
            expected = shape_distance(a, b, weights)
            actual = float(matrix[i, j])
            if math.isnan(expected):
                assert math.isnan(actual)
            else:
                assert actual == expected, (i, j, actual, expected)


class TestQuadMatrixKernel:
    @settings(max_examples=60, deadline=None)
    @given(
        a_quads=st.lists(quads, min_size=1, max_size=8),
        b_quads=st.lists(quads, min_size=1, max_size=8),
        weights=st.tuples(
            weight_values, weight_values, weight_values, weight_values
        ),
    )
    def test_quad_matrix_matches_scalar_oracle(self, a_quads, b_quads, weights):
        clear_quad_matrix_memo()
        a_cands = [quad_candidate(*q) for q in a_quads]
        b_cands = [quad_candidate(*q) for q in b_quads]
        assert_quad_matrix_matches_scalar(a_cands, b_cands, weights)

    @pytest.mark.parametrize("domain", ALL_DOMAINS)
    def test_quad_matrix_matches_scalar_on_domain(self, domain):
        candidates = domain_candidates(domain)
        half = len(candidates) // 2
        assert_quad_matrix_matches_scalar(
            candidates[:half], candidates[half:], (0.25, 0.25, 0.25, 0.25)
        )

    def test_quad_zero_quadruples_and_empty_paths(self):
        # 0/0 ratio terms are defined as 0; two empty paths are at
        # path-distance 0, empty-vs-nonempty at 1.
        zero = quad_candidate("", 0, 0, 1)
        other = quad_candidate("tb", 3, 2, 7)
        assert_quad_matrix_matches_scalar(
            [zero, other], [zero, other], (0.25, 0.25, 0.25, 0.25)
        )

    def test_quad_nan_weight_propagates_like_scalar(self):
        a = quad_candidate("ab", 2, 2, 5)
        b = quad_candidate("ad", 3, 1, 9)
        weights = (float("nan"), 0.25, 0.25, 0.25)
        assert math.isnan(shape_distance(a, b, weights))
        assert_quad_matrix_matches_scalar([a], [b], weights)

    def test_quad_zero_weights_skip_terms(self):
        a = quad_candidate("ab", 2, 2, 5)
        b = quad_candidate("ad", 3, 1, 9)
        assert_quad_matrix_matches_scalar([a], [b], (0.0, 0.0, 0.0, 0.0))
        assert_quad_matrix_matches_scalar([a], [b], (1.0, 0.0, 0.0, 0.0))


class TestQuadMatrixMemo:
    def test_quad_memo_counts_hits_and_misses(self):
        a = [quad_candidate("ab", 2, 2, 5)]
        b = [quad_candidate("ad", 3, 1, 9)]
        shape_distance_matrix(a, b)
        shape_distance_matrix(a, b)
        stats = quad_matrix_memo_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1

    def test_quad_memo_lru_cap_evicts_oldest(self):
        set_quad_matrix_memo_limit(2)
        pairs = [
            ([quad_candidate("a" * (k + 1), k, k, k + 1)],
             [quad_candidate("b", 1, 1, 1)])
            for k in range(3)
        ]
        for a, b in pairs:
            shape_distance_matrix(a, b)
        stats = quad_matrix_memo_stats()
        assert stats["size"] == 2
        assert stats["evictions"] == 1
        assert stats["limit"] == 2
        # The evicted (oldest) entry recomputes: a miss, not a hit.
        shape_distance_matrix(*pairs[0])
        assert quad_matrix_memo_stats()["misses"] == 4

    def test_quad_memo_zero_limit_disables_memoization(self):
        set_quad_matrix_memo_limit(0)
        a = [quad_candidate("ab", 2, 2, 5)]
        b = [quad_candidate("ad", 3, 1, 9)]
        shape_distance_matrix(a, b)
        shape_distance_matrix(a, b)
        stats = quad_matrix_memo_stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 2
        assert stats["size"] == 0

    def test_quad_memo_negative_limit_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            set_quad_matrix_memo_limit(-1)

    def test_quad_memo_limit_wired_from_execution_config(self):
        records = candidate_records_for_cluster(cluster_pages("music", n=4))
        find_common_subtree_sets(
            records,
            seed=0,
            backend=ExecutionConfig(distance_memo_entries=7),
        )
        assert quad_matrix_memo_stats()["limit"] == 7
        assert ExecutionConfig(distance_memo_entries=0).distance_memo_entries == 0
        with pytest.raises(ValueError, match="distance_memo_entries"):
            ExecutionConfig(distance_memo_entries=-1)


# ---------------------------------------------------------------------------
# Columnar record transport
# ---------------------------------------------------------------------------


class TestColumnarTransport:
    @pytest.mark.parametrize("domain", ALL_DOMAINS)
    def test_columnar_round_trip_is_exact(self, domain):
        from repro.core.columnar import pack_records, unpack_records

        records = candidate_records_for_cluster(cluster_pages(domain, n=6))
        assert unpack_records(pack_records(records)) == records

    def test_columnar_round_trip_edges(self):
        from repro.core.columnar import pack_records, unpack_records

        empty_record = CandidateRecord(
            path="",
            tags=(),
            fanout=0,
            depth=0,
            nodes=1,
            term_counts={},
            siblings=(),
        )
        for edge in ([], [[]], [[], []], [[empty_record]], [[], [empty_record]]):
            assert unpack_records(pack_records(edge)) == edge

    def test_columnar_decodes_to_native_python_types(self):
        from repro.core.columnar import pack_records, unpack_records

        records = candidate_records_for_cluster(cluster_pages("jobs", n=3))
        [decoded] = unpack_records(pack_records([records[0]]))
        record = decoded[0]
        assert type(record.path) is str
        assert all(type(tag) is str for tag in record.tags)
        assert type(record.fanout) is int
        for term, count in record.term_counts.items():
            assert type(term) is str and type(count) is int

    def test_columnar_preserves_term_insertion_order(self):
        from repro.core.columnar import pack_records, unpack_records

        records = candidate_records_for_cluster(cluster_pages("travel", n=4))
        decoded = unpack_records(pack_records(records))
        for page_records, decoded_records in zip(records, decoded):
            for record, back in zip(page_records, decoded_records):
                assert list(back.term_counts) == list(record.term_counts)

    def test_columnar_beats_pickle_bytes(self):
        from repro.core.columnar import pack_records

        records = candidate_records_for_cluster(cluster_pages("library", n=8))
        pickled = len(pickle.dumps(records, pickle.HIGHEST_PROTOCOL))
        packed = len(pack_records(records))
        assert packed * 3 < pickled  # conservative floor; typically ~8x

    def test_columnar_and_pickle_fanouts_agree(self):
        from repro.resilience.report import RunReportBuilder, activate_report

        pages = cluster_pages("ecommerce", n=8)
        serial = candidate_records_for_cluster(pages)
        received = {}
        for transport in ("columnar", "pickle"):
            builder = RunReportBuilder()
            with activate_report(builder):
                fanned = candidate_records_for_cluster(
                    pages,
                    execution=ExecutionConfig(
                        n_jobs=2, record_transport=transport
                    ),
                )
            assert fanned == serial
            entry = builder.build().transport["phase2-records"]
            assert entry["chunks"] == 2
            assert entry["bytes_sent"] > 0
            received[transport] = entry["bytes_received"]
        assert received["columnar"] * 3 < received["pickle"]

    def test_record_transport_validation(self):
        with pytest.raises(ValueError, match="record transport"):
            ExecutionConfig(record_transport="carrier-pigeon")


# ---------------------------------------------------------------------------
# Streaming probe → extract mode
# ---------------------------------------------------------------------------


def _small_config(**execution_kwargs) -> ThorConfig:
    return ThorConfig(
        probing=ProbeConfig(dictionary_queries=12, nonsense_queries=2),
        seed=7,
        execution=ExecutionConfig(**execution_kwargs),
    )


class TestStreamingPipeline:
    def test_streaming_digest_matches_barriered(self):
        from repro.core.thor import Thor

        config = _small_config()
        barriered = Thor(config).run(make_site("ecommerce", seed=3, records=50))
        streamed = Thor(config).run(
            make_site("ecommerce", seed=3, records=50), streaming=True
        )
        assert result_digest(streamed) == result_digest(barriered)

    def test_streaming_digest_matches_under_seeded_chaos(self):
        from repro.core.thor import Thor
        from repro.probe.faults import FaultSpec
        from repro.resilience.faults import FaultPlan

        def plan():
            return FaultPlan(
                seed=11,
                source=FaultSpec(error_rate=0.15, malformed_rate=0.05),
                page_failure_rate=0.1,
            )

        config = _small_config()
        barriered = Thor(config, fault_plan=plan()).run(
            make_site("jobs", seed=5, records=50)
        )
        streamed = Thor(config, fault_plan=plan()).run(
            make_site("jobs", seed=5, records=50), streaming=True
        )
        assert result_digest(streamed) == result_digest(barriered)
        # Quarantine semantics unchanged: the same units for the same
        # reasons (record *order* may interleave across the overlapped
        # stages; the ledger is accounting, not part of the result).
        barriered_units = sorted(str(q) for q in barriered.report.quarantined)
        streamed_units = sorted(str(q) for q in streamed.report.quarantined)
        assert streamed_units == barriered_units
        assert len(streamed_units) > 0  # the plan really injected

    def test_streaming_matches_with_cache_and_jobs(self, tmp_path):
        from repro.core.thor import Thor

        barriered = Thor(_small_config()).run(
            make_site("travel", seed=4, records=50)
        )
        config = _small_config(n_jobs=2, cache_dir=str(tmp_path))
        streamed_cold = Thor(config).run(
            make_site("travel", seed=4, records=50), streaming=True
        )
        streamed_warm = Thor(config).run(
            make_site("travel", seed=4, records=50), streaming=True
        )
        assert result_digest(streamed_cold) == result_digest(barriered)
        assert result_digest(streamed_warm) == result_digest(barriered)

    def test_api_run_exposes_streaming(self):
        from repro.api import RunOptions, run

        config = _small_config()
        barriered = run(make_site("music", seed=2, records=40), config)
        streamed = run(
            make_site("music", seed=2, records=40),
            config,
            RunOptions(streaming=True),
        )
        assert result_digest(streamed) == result_digest(barriered)
