"""End-to-end tests for the full THOR pipeline."""

from __future__ import annotations

from collections import Counter

import pytest

from repro import Thor, ThorConfig
from repro.config import ClusteringConfig, ProbeConfig, SubtreeConfig
from repro.core.cluster_ranking import rank_clusters, score_clusters
from repro.core.page_clustering import PageClusterer
from repro.deepweb import make_site
from repro.errors import ExtractionError


@pytest.fixture(scope="module")
def site():
    return make_site("ecommerce", seed=23, error_rate=0.0)


@pytest.fixture(scope="module")
def result(site):
    return Thor(ThorConfig(seed=23)).run(site)


class TestPipeline:
    def test_probe_collects_full_sample(self, site):
        thor = Thor(ThorConfig(seed=23))
        probe = thor.probe(site)
        assert len(probe) == 110

    def test_extraction_quality(self, result):
        assert result.pagelets
        correct = sum(
            1
            for p in result.pagelets
            if p.path == getattr(p.page, "gold_pagelet_path", None)
        )
        assert correct / len(result.pagelets) >= 0.9

    def test_no_pagelets_from_error_pages(self, result):
        labels = {p.page.class_label for p in result.pagelets}
        assert "error" not in labels

    def test_partitioned_parallel_to_pagelets(self, result):
        assert len(result.partitioned) == len(result.pagelets)
        for part, pagelet in zip(result.partitioned, result.pagelets):
            assert part.pagelet is pagelet

    def test_pagelet_for_page(self, result):
        pagelet = result.pagelets[0]
        assert result.pagelet_for_page(pagelet.page) is pagelet
        missing = [p for p in result.pages if result.pagelet_for_page(p) is None]
        assert len(missing) == len(result.pages) - len(result.pagelets)

    def test_identifications_cover_top_m(self, result):
        assert 1 <= len(result.identifications) <= 2

    def test_pagelet_html_roundtrip(self, result):
        pagelet = result.pagelets[0]
        assert pagelet.html().startswith("<")
        assert pagelet.text()

    def test_extract_empty_raises(self):
        with pytest.raises(ExtractionError):
            Thor(ThorConfig(seed=0)).extract([])

    def test_deterministic_given_seed(self, site):
        a = Thor(ThorConfig(seed=5)).run(site)
        b = Thor(ThorConfig(seed=5)).run(site)
        assert [p.path for p in a.pagelets] == [p.path for p in b.pagelets]

    def test_custom_probe_config(self, site):
        config = ThorConfig(probing=ProbeConfig(20, 5), seed=1)
        probe = Thor(config).probe(site)
        assert len(probe) == 25


class TestPageClustererAndRanking:
    @pytest.fixture(scope="class")
    def pages(self, site):
        return list(Thor(ThorConfig(seed=23)).probe(site).pages)

    def test_clusters_are_pure(self, pages):
        clusterer = PageClusterer(ClusteringConfig(), seed=23)
        fitted = clusterer.fit(pages)
        for cluster in fitted.clustering.non_empty_clusters():
            labels = Counter(
                p.class_label for p in fitted.cluster_pages(cluster)
            )
            dominant = labels.most_common(1)[0][1]
            assert dominant / sum(labels.values()) >= 0.9

    def test_ranking_prefers_pagelet_clusters(self, pages):
        fitted = PageClusterer(ClusteringConfig(), seed=23).fit(pages)
        top = fitted.cluster_pages(fitted.ranked_clusters[0])
        labels = Counter(p.class_label for p in top)
        assert labels.most_common(1)[0][0] in ("multi", "single")

    def test_scores_sorted_descending(self, pages):
        fitted = PageClusterer(ClusteringConfig(), seed=23).fit(pages)
        combined = [s.combined for s in fitted.scores]
        assert combined == sorted(combined, reverse=True)

    def test_rank_clusters_helper(self, pages):
        fitted = PageClusterer(ClusteringConfig(), seed=23).fit(pages)
        assert rank_clusters(pages, fitted.clustering) == [
            s.cluster for s in score_clusters(pages, fitted.clustering)
        ]

    def test_top_clusters_limits(self, pages):
        fitted = PageClusterer(ClusteringConfig(), seed=23).fit(pages)
        assert len(fitted.top_clusters(1)) == 1
        assert len(fitted.top_clusters(99)) == len(
            fitted.clustering.non_empty_clusters()
        )

    def test_empty_fit_raises(self):
        with pytest.raises(ExtractionError):
            PageClusterer(ClusteringConfig()).fit([])


class TestConfigSurface:
    def test_defaults_match_paper(self):
        config = ThorConfig()
        assert config.probing.dictionary_queries == 100
        assert config.probing.nonsense_queries == 10
        assert config.clustering.restarts == 10
        assert config.subtrees.distance_weights == (0.25, 0.25, 0.25, 0.25)
        assert config.subtrees.static_similarity_threshold == 0.5
        assert config.subtrees.path_code_length == 1

    def test_subtree_config_immutable(self):
        with pytest.raises(Exception):
            SubtreeConfig().max_assign_distance = 0.9
