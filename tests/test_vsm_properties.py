"""Property-based tests on the vector-space model's IR semantics."""

from __future__ import annotations

import math

from hypothesis import given, strategies as st

from repro.vsm.centroid import centroid, vector_sum
from repro.vsm.similarity import cosine_similarity
from repro.vsm.vector import SparseVector
from repro.vsm.weighting import CorpusWeighter, paper_tfidf_weight

count_maps = st.dictionaries(
    st.sampled_from("abcdefgh"), st.integers(1, 20), min_size=1, max_size=5
)
corpora = st.lists(count_maps, min_size=1, max_size=8)


class TestTfidfProperties:
    @given(st.integers(1, 100), st.integers(1, 100), st.integers(1, 100))
    def test_weight_nonnegative(self, tf, n, df):
        assert paper_tfidf_weight(tf, max(n, df), min(n, df)) >= 0.0

    @given(st.integers(1, 50), st.integers(2, 100))
    def test_idf_monotone_in_document_frequency(self, tf, n):
        # Rarer features weigh more, all else equal.
        rare = paper_tfidf_weight(tf, n, 1)
        common = paper_tfidf_weight(tf, n, n)
        assert rare >= common

    @given(st.integers(2, 50), st.integers(2, 100), st.integers(1, 50))
    def test_weight_monotone_in_tf(self, tf, n, df):
        df = min(df, n)
        assert paper_tfidf_weight(tf, n, df) >= paper_tfidf_weight(
            tf - 1, n, df
        )

    @given(corpora)
    def test_transform_produces_unit_or_zero_vectors(self, docs):
        weighter = CorpusWeighter.fit(docs)
        for doc in docs:
            vector = weighter.transform(doc)
            assert vector.is_zero() or math.isclose(
                vector.norm, 1.0, rel_tol=1e-9
            )

    @given(corpora)
    def test_document_frequency_bounds(self, docs):
        weighter = CorpusWeighter.fit(docs)
        for feature, df in weighter.doc_freq.items():
            assert 1 <= df <= len(docs)

    @given(corpora)
    def test_idf_nonnegative(self, docs):
        weighter = CorpusWeighter.fit(docs)
        for feature in weighter.doc_freq:
            assert weighter.idf(feature) >= 0.0


class TestCentroidProperties:
    vectors = st.lists(
        count_maps.map(lambda d: SparseVector({k: float(v) for k, v in d.items()})),
        min_size=1,
        max_size=6,
    )

    @given(vectors)
    def test_centroid_within_convex_hull_coordinatewise(self, vs):
        center = centroid(vs)
        for feature in center.features():
            values = [v[feature] for v in vs]
            assert min(values) - 1e-9 <= center[feature] <= max(values) + 1e-9

    @given(vectors)
    def test_sum_equals_n_times_centroid(self, vs):
        total = vector_sum(vs)
        center = centroid(vs)
        for feature in total.features():
            assert math.isclose(
                total[feature], center[feature] * len(vs), rel_tol=1e-9
            )

    @given(vectors)
    def test_members_similar_to_centroid(self, vs):
        # Non-negative vectors: each member has non-negative cosine to
        # the centroid, and at least one is strictly positive.
        center = centroid(vs)
        sims = [cosine_similarity(v, center) for v in vs]
        assert all(s >= -1e-12 for s in sims)
        assert any(s > 0 for s in sims)
