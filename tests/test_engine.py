"""Tests for the deep-web search-engine layer."""

from __future__ import annotations

import pytest

from repro.config import ExecutionConfig, ProbeConfig, ThorConfig
from repro.deepweb import make_site
from repro.engine import DeepWebSearchEngine, InvertedIndex, ObjectDocument
from repro.errors import ThorError
from repro.vsm.matrix import HAVE_NUMPY


def doc(doc_id, text, site="s.example.com", query="q"):
    return ObjectDocument.build(
        doc_id=doc_id,
        site=site,
        probe_query=query,
        path="html/body/table/tr",
        page_url=f"http://{site}/?q={query}",
        text=text,
    )


class TestObjectDocument:
    def test_terms_extracted_at_build(self):
        d = doc(0, "Connected cameras")
        assert d.term_counts == {"connect": 1, "camera": 1}

    def test_snippet_truncates(self):
        d = doc(0, "word " * 50)
        assert len(d.snippet(30)) == 30
        assert d.snippet(30).endswith("...")

    def test_snippet_short_text(self):
        assert doc(0, "short").snippet() == "short"

    def test_snippet_collapses_whitespace(self):
        assert doc(0, "a   b\n\nc").snippet() == "a b c"


class TestInvertedIndex:
    def test_add_and_len(self):
        index = InvertedIndex()
        index.add(doc(0, "alpha"))
        index.add(doc(1, "beta"))
        assert len(index) == 2
        assert 0 in index
        assert 99 not in index

    def test_search_ranks_matching_first(self):
        index = InvertedIndex()
        index.add(doc(0, "sony camera cheap"))
        index.add(doc(1, "red bicycle"))
        index.add(doc(2, "camera camera camera bag"))
        hits = index.search("camera")
        ids = [h.document.doc_id for h in hits]
        assert set(ids) == {0, 2}
        assert all(h.score > 0 for h in hits)

    def test_search_no_match(self):
        index = InvertedIndex()
        index.add(doc(0, "alpha"))
        assert index.search("zzz") == []

    def test_search_empty_index(self):
        assert InvertedIndex().search("alpha") == []

    def test_search_empty_query(self):
        index = InvertedIndex()
        index.add(doc(0, "alpha"))
        assert index.search("   !!!") == []

    def test_query_stemming_matches_documents(self):
        index = InvertedIndex()
        index.add(doc(0, "connected devices"))
        assert index.search("connections")

    def test_multi_term_query_prefers_both(self):
        index = InvertedIndex()
        index.add(doc(0, "sony camera"))
        index.add(doc(1, "sony radio"))
        hits = index.search("sony camera")
        assert hits[0].document.doc_id == 0

    def test_top_k_limit(self):
        index = InvertedIndex()
        for i in range(20):
            index.add(doc(i, f"camera model {i}"))
        assert len(index.search("camera", top_k=5)) == 5

    def test_remove(self):
        index = InvertedIndex()
        index.add(doc(0, "alpha"))
        index.remove(0)
        assert len(index) == 0
        assert index.search("alpha") == []
        index.remove(0)  # idempotent

    def test_re_add_replaces(self):
        index = InvertedIndex()
        index.add(doc(0, "alpha"))
        index.add(doc(0, "beta"))
        assert len(index) == 1
        assert index.search("alpha") == []
        assert index.search("beta")

    def test_scores_bounded(self):
        index = InvertedIndex()
        index.add(doc(0, "camera"))
        hits = index.search("camera")
        assert 0.0 < hits[0].score <= 1.0 + 1e-9

    def test_vocabulary_size(self):
        index = InvertedIndex()
        index.add(doc(0, "alpha beta"))
        assert index.vocabulary_size() == 2

    def test_postings_diagnostics(self):
        index = InvertedIndex()
        index.add(doc(0, "alpha alpha"))
        assert index.postings("alpha") == {0: 2}


@pytest.fixture(scope="module")
def engine():
    eng = DeepWebSearchEngine(ThorConfig(seed=3))
    eng.register(make_site("ecommerce", seed=3))
    eng.register(make_site("library", seed=6))
    return eng


class TestDeepWebSearchEngine:
    def test_registration_summaries(self, engine):
        assert len(engine.sites) == 2
        for site in engine.sites:
            summary = engine.summary(site)
            assert summary.pages_probed == 110
            assert summary.objects_indexed > 0

    def test_unknown_site_raises(self, engine):
        with pytest.raises(ThorError):
            engine.summary("nowhere.example.com")

    def test_content_search_returns_provenance(self, engine):
        hits = engine.search("camera", top_k=5)
        assert hits
        for hit in hits:
            assert hit.document.site in engine.sites
            assert hit.document.page_url

    def test_site_filter(self, engine):
        site = engine.sites[0]
        hits = engine.search("the", top_k=5, site=site)
        assert all(h.document.site == site for h in hits)

    def test_site_level_search(self, engine):
        site_hits = engine.search_sites("camera")
        assert site_hits
        assert site_hits[0].matching_objects >= 1
        scores = [s.score for s in site_hits]
        assert scores == sorted(scores, reverse=True)

    def test_deduplication(self):
        eng = DeepWebSearchEngine(ThorConfig(seed=5), deduplicate=True)
        eng.register(make_site("jobs", seed=5))
        texts = [
            eng.search("the", top_k=50)[i].document.text
            for i in range(min(10, len(eng.search("the", top_k=50))))
        ]
        assert len(texts) == len(set(texts))

    def test_engine_len(self, engine):
        assert len(engine) > 0


class TestRegisterIncrementalCounters:
    """``register`` routes through the incremental refresh path and
    surfaces the drift-tier counters on the site summary."""

    def _config(self, cache_dir=None):
        return ThorConfig(
            seed=7,
            probing=ProbeConfig(dictionary_queries=12, nonsense_queries=2),
            execution=ExecutionConfig(
                cache_dir=str(cache_dir) if cache_dir else None
            ),
        )

    @pytest.mark.skipif(not HAVE_NUMPY, reason="model reuse needs numpy")
    def test_re_registration_replays_from_the_model(self, tmp_path):
        eng = DeepWebSearchEngine(self._config(tmp_path))
        site = lambda: make_site("jobs", seed=7, records=60)  # noqa: E731
        first = eng.register(site())
        # Cold cache: the first registration is a counted full fit.
        assert first.pages_refit == first.pages_probed > 0
        assert first.pages_skipped == 0
        assert first.pages_assigned == 0
        second = eng.register(site())
        # Unchanged site: every page replays from the stored model.
        assert second.pages_skipped == second.pages_probed
        assert second.pages_refit == 0
        assert second.pages_assigned == 0

    def test_without_a_store_every_registration_refits(self):
        eng = DeepWebSearchEngine(self._config())
        site = lambda: make_site("jobs", seed=7, records=60)  # noqa: E731
        for _ in range(2):
            summary = eng.register(site())
            assert summary.pages_refit == summary.pages_probed > 0
            assert summary.pages_skipped == 0


class TestHighlightedSnippet:
    def test_stem_based_highlighting(self):
        d = doc(0, "a compact digital camera bundle")
        assert d.highlighted_snippet("cameras") == (
            "a compact digital **camera** bundle"
        )

    def test_no_match_falls_back_to_plain_snippet(self):
        d = doc(0, "red bicycle")
        assert d.highlighted_snippet("camera") == "red bicycle"

    def test_custom_marker(self):
        d = doc(0, "sony camera")
        assert "<em>camera</em>" in d.highlighted_snippet(
            "camera", marker="<em>"
        ).replace("<em>camera<em>", "<em>camera</em>")

    def test_window_centred_on_first_match(self):
        filler = "word " * 40
        d = doc(0, filler + "camera " + filler)
        snippet = d.highlighted_snippet("camera", limit=50)
        assert "**camera**" in snippet
        assert len(snippet) <= 53

    def test_multiple_matches_marked(self):
        d = doc(0, "camera bag for camera lovers")
        snippet = d.highlighted_snippet("camera", limit=200)
        assert snippet.count("**camera**") == 2

    def test_punctuation_adjacent_match(self):
        d = doc(0, "the camera, priced right")
        assert "**camera,**" in d.highlighted_snippet("camera")
