"""Tests for path expressions and tag codecs."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import PathResolutionError, PathSyntaxError
from repro.html import parse, node_path, resolve_path, simplify_path
from repro.html.paths import TagCodec, node_tag_sequence, parse_path, path_tags

DOC = (
    "<html><body>"
    "<table><tr><td>1a</td></tr></table>"
    "<table><tr><td>2a</td><td>2b</td></tr><tr><td>2c</td></tr></table>"
    "<p>one</p><p>two</p>"
    "</body></html>"
)


@pytest.fixture
def tree():
    return parse(DOC)


class TestNodePath:
    def test_root(self, tree):
        assert node_path(tree.root) == "html"

    def test_unindexed_when_unique(self, tree):
        body = tree.root.find("body")
        assert node_path(body) == "html/body"

    def test_indexed_same_tag_siblings(self, tree):
        tables = tree.root.find_all("table")
        assert node_path(tables[0]) == "html/body/table[1]"
        assert node_path(tables[1]) == "html/body/table[2]"

    def test_paper_example_shape(self, tree):
        tds = tree.root.find_all("td")
        assert node_path(tds[1]) == "html/body/table[2]/tr[1]/td[1]"
        assert node_path(tds[3]) == "html/body/table[2]/tr[2]/td"

    def test_content_node_path(self, tree):
        td = tree.root.find("td")
        leaf = td.children[0]
        assert node_path(leaf) == "html/body/table[1]/tr/td/#text"

    def test_every_tag_node_roundtrips(self, tree):
        for node in tree.iter_tags():
            assert resolve_path(tree, node_path(node)) is node

    def test_every_content_node_roundtrips(self, tree):
        for node in tree.iter_content():
            assert resolve_path(tree, node_path(node)) is node


class TestResolvePath:
    def test_simple(self, tree):
        assert resolve_path(tree, "html/body/p[2]").text() == "two"

    def test_missing_index_means_first(self, tree):
        assert resolve_path(tree, "html/body/table/tr/td").text() == "1a"

    def test_wrong_root_raises(self, tree):
        with pytest.raises(PathResolutionError):
            resolve_path(tree, "body/p")

    def test_out_of_range_index_raises(self, tree):
        with pytest.raises(PathResolutionError):
            resolve_path(tree, "html/body/table[9]")

    def test_missing_tag_raises(self, tree):
        with pytest.raises(PathResolutionError):
            resolve_path(tree, "html/body/video")

    def test_descend_below_leaf_raises(self, tree):
        with pytest.raises(PathResolutionError):
            resolve_path(tree, "html/body/p[1]/#text/b")

    def test_resolve_against_node(self, tree):
        body = tree.root.find("body")
        assert resolve_path(body, "body/p[1]").text() == "one"


class TestParsePath:
    def test_steps(self):
        assert parse_path("html/body/table[3]") == [
            ("html", None),
            ("body", None),
            ("table", 3),
        ]

    def test_empty_raises(self):
        with pytest.raises(PathSyntaxError):
            parse_path("")

    def test_bad_step_raises(self):
        with pytest.raises(PathSyntaxError):
            parse_path("html/ta ble")

    def test_bad_index_raises(self):
        with pytest.raises(PathSyntaxError):
            parse_path("html/table[x]")

    def test_case_normalized(self):
        assert parse_path("HTML/Body") == [("html", None), ("body", None)]

    def test_path_tags(self):
        assert path_tags("html/body/table[3]/tr") == ["html", "body", "table", "tr"]


class TestTagCodec:
    def test_paper_examples(self):
        codec = TagCodec()
        assert codec.encode("html") == "h"
        assert codec.encode("head") == "e"

    def test_stable_assignment(self):
        codec = TagCodec()
        first = codec.encode("custommade")
        assert codec.encode("custommade") == first

    def test_distinct_codes(self):
        codec = TagCodec()
        tags = ["html", "head", "body", "table", "tr", "td", "div", "span",
                "blink", "marquee", "xyz", "foo", "bar"]
        codes = [codec.encode(t) for t in tags]
        assert len(set(codes)) == len(tags)
        assert all(len(c) == 1 for c in codes)

    def test_q2_codes(self):
        codec = TagCodec(q=2)
        code = codec.encode("html")
        assert len(code) == 2

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            TagCodec(q=0)

    def test_simplify_sequence(self):
        codec = TagCodec()
        assert codec.simplify(["html", "head", "title"]) == "he" + codec.encode("title")

    @given(st.lists(st.sampled_from(["a", "b", "div", "td", "zz1", "zz2"]), max_size=8))
    def test_codes_injective_per_codec(self, tags):
        codec = TagCodec()
        mapping = {t: codec.encode(t) for t in tags}
        assert len(set(mapping.values())) == len(mapping)


class TestSimplifyPath:
    def test_paper_example(self):
        # html/head -> "he", html/head/title -> "het" (q=1)
        codec = TagCodec()
        a = simplify_path("html/head", codec)
        b = simplify_path("html/head/title", codec)
        assert a == "he"
        assert b.startswith("he") and len(b) == 3

    def test_indexes_ignored(self):
        codec = TagCodec()
        assert simplify_path("html/body/table[3]", codec) == simplify_path(
            "html/body/table[1]", codec
        )

    def test_node_tag_sequence(self):
        tree = parse(DOC)
        td = tree.root.find("td")
        assert node_tag_sequence(td) == ["html", "body", "table", "tr", "td"]
