"""Crawl-service integration over the hostile real-HTTP harness.

The ISSUE-10 acceptance criterion lives here: a crawl of the two-site
hostile fixture (one healthy site with transient scripted faults, one
doomed site that never answers), interrupted and resumed, produces a
corpus digest identical to the uninterrupted crawl's — while the
doomed site trips its circuit breaker and is reported quarantined on
the :class:`~repro.frontier.service.CrawlReport`, across the resume
boundary. Plus the sharded-corpus checkpoint round-trip and the
robots-over-HTTP enforcement the transport feeds the frontier.
"""

from __future__ import annotations

import os

import pytest

from repro.artifacts import ArtifactStore
from repro.artifacts.corpus import (
    load_corpus_shards,
    publish_corpus_shards,
    shard_path,
)
from repro.config import (
    CrawlConfig,
    ExecutionConfig,
    RunOptions,
    ThorConfig,
    TransportConfig,
)
from repro.frontier.service import format_crawl_report, run_crawl
from repro.transport.http import HttpFetcher
from repro.transport.testserver import HostilePair

SEED = 7


@pytest.fixture(scope="module")
def pair():
    with HostilePair(seed=SEED) as fixture:
        yield fixture


def transport_config(**overrides) -> TransportConfig:
    defaults = dict(
        connect_timeout_s=2.0,
        read_timeout_s=1.0,
        breaker_failures=5,
        breaker_cooldown=4,
        obey_robots=True,
    )
    defaults.update(overrides)
    return TransportConfig(**defaults)


def config(cache_dir=None, transport=None, **crawl_kwargs) -> ThorConfig:
    crawl_kwargs.setdefault("max_pages", 40)
    crawl_kwargs.setdefault("batch_size", 4)
    crawl_kwargs.setdefault("timeout_s", 5.0)
    crawl_kwargs.setdefault("max_retries", 2)
    return ThorConfig(
        seed=SEED,
        crawl=CrawlConfig(**crawl_kwargs),
        execution=ExecutionConfig(cache_dir=cache_dir),
        transport=transport or transport_config(),
    )


def crawl_once(pair, cfg, options=None):
    """One crawl over the (rewound) harness with a fresh fetcher."""
    pair.reset_positions()
    with HttpFetcher(cfg.transport, seed=cfg.seed) as fetcher:
        return run_crawl(
            fetcher, seeds=pair.seeds, config=cfg, options=options
        )


class TestHostileCrawl:
    def test_uninterrupted_crawl_quarantines_doomed_site(self, pair):
        report = crawl_once(pair, config())
        assert report.finished
        assert report.pages_fetched >= 8  # the healthy site's page set
        # The doomed site tripped its breaker and is on the report.
        assert report.breaker_trips >= 1
        assert pair.doomed_site in report.quarantined_sites
        # Transient faults were absorbed by retries, not lost pages.
        assert report.transport.get("fault_http_5xx", 0) >= 1
        text = format_crawl_report(report)
        assert "breakers: tripped=" in text
        assert f"quarantined={pair.doomed_site}" in text

    def test_interrupted_resume_digest_identical_with_quarantine(
        self, pair, tmp_path
    ):
        """The acceptance criterion: interrupted+resumed == uninterrupted,
        and the breaker quarantine survives the resume boundary."""
        baseline = crawl_once(pair, config(corpus_shard_pages=3))

        cache = str(tmp_path / "cache")
        cfg = config(cache_dir=cache, corpus_shard_pages=3)
        options = RunOptions(run_id="hostile-a")
        pair.reset_positions()
        with HttpFetcher(cfg.transport, seed=cfg.seed) as fetcher:
            drained = run_crawl(
                fetcher,
                seeds=pair.seeds,
                config=ThorConfig(
                    seed=cfg.seed,
                    crawl=CrawlConfig(
                        max_pages=40, batch_size=4, timeout_s=5.0,
                        max_retries=2, corpus_shard_pages=3,
                        max_pages_per_run=5,
                    ),
                    execution=ExecutionConfig(cache_dir=cache),
                    transport=cfg.transport,
                ),
                options=options,
            )
        assert not drained.finished

        # Resume with a *fresh* fetcher: breaker state must come back
        # from the checkpoint, not process memory. The harness is NOT
        # rewound here — the resumed crawl continues mid-script, the
        # way a real resumed crawl meets the network mid-history.
        with HttpFetcher(cfg.transport, seed=cfg.seed) as fetcher:
            resumed = run_crawl(
                fetcher,
                seeds=pair.seeds,
                config=cfg,
                options=RunOptions(run_id="hostile-a", resume=True),
            )
        assert resumed.finished
        assert resumed.corpus_digest == baseline.corpus_digest
        assert resumed.resume_hits >= 1
        assert resumed.breaker_trips >= 1
        assert pair.doomed_site in resumed.quarantined_sites
        assert resumed.corpus_shards >= 1

    def test_robots_disallowed_page_never_requested(self, pair):
        report = crawl_once(pair, config())
        assert "/private/secret" not in pair.healthy.requests
        assert report.robots_denied >= 1
        assert all("/private/" not in page.url for page in report.pages)

    def test_no_robots_fetches_the_hidden_page(self, pair):
        report = crawl_once(
            pair, config(transport=transport_config(obey_robots=False))
        )
        assert any("/private/secret" in page.url for page in report.pages)
        assert report.robots_denied == 0

    def test_seed_only_moves_fault_placement(self, pair):
        # A different transport seed re-jitters breaker cooldowns but
        # cannot change which pages exist: digests stay equal because
        # the corpus is defined by the link graph, not the fault order.
        first = crawl_once(pair, config())
        cfg = config()
        pair.reset_positions()
        with HttpFetcher(cfg.transport, seed=99) as fetcher:
            second = run_crawl(fetcher, seeds=pair.seeds, config=cfg)
        assert second.corpus_digest == first.corpus_digest


class TestCorpusShards:
    def _corpus(self, n):
        return [
            (f"http://s.example/p/{i}", i % 3, f"<html>page {i}</html>")
            for i in range(n)
        ]

    def test_round_trip_with_inline_tail(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        corpus = self._corpus(11)
        meta = publish_corpus_shards(store, "c1", corpus, pages_per_shard=4)
        assert meta == {"pages_per_shard": 4, "count": 2, "pages": 8}
        loaded = load_corpus_shards(store, "c1", meta)
        assert loaded == corpus[:8]  # the tail stays inline

    def test_shards_are_immutable_once_published(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        corpus = self._corpus(8)
        publish_corpus_shards(store, "c2", corpus, pages_per_shard=4)
        path = shard_path(store, "c2", 4, 0)
        before = os.stat(path).st_mtime_ns, open(path, "rb").read()
        # Re-publishing a longer corpus only writes the *new* shard.
        publish_corpus_shards(store, "c2", self._corpus(12), pages_per_shard=4)
        after = os.stat(path).st_mtime_ns, open(path, "rb").read()
        assert before == after

    def test_torn_shard_voids_the_load(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        corpus = self._corpus(8)
        meta = publish_corpus_shards(store, "c3", corpus, pages_per_shard=4)
        path = shard_path(store, "c3", 4, 1)
        with open(path, "rb") as handle:
            payload = handle.read()
        with open(path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])  # torn write
        assert load_corpus_shards(store, "c3", meta) is None

    def test_corrupt_shard_forces_clean_restart(self, pair, tmp_path):
        """A torn shard must not poison a resume: the crawl restarts
        fresh and still converges on the same digest."""
        baseline = crawl_once(pair, config(corpus_shard_pages=3))

        cache = str(tmp_path / "cache")
        cfg = config(cache_dir=cache, corpus_shard_pages=3)
        interrupted = ThorConfig(
            seed=cfg.seed,
            crawl=CrawlConfig(
                max_pages=40, batch_size=4, timeout_s=5.0, max_retries=2,
                corpus_shard_pages=3, max_pages_per_run=5,
            ),
            execution=ExecutionConfig(cache_dir=cache),
            transport=cfg.transport,
        )
        pair.reset_positions()
        with HttpFetcher(cfg.transport, seed=cfg.seed) as fetcher:
            drained = run_crawl(
                fetcher, seeds=pair.seeds, config=interrupted,
                options=RunOptions(run_id="hostile-torn"),
            )
        assert not drained.finished and drained.corpus_shards >= 1

        store = ArtifactStore(cache)  # the store root IS the cache dir
        path = shard_path(store, "hostile-torn", 3, 0)
        assert os.path.exists(path)
        with open(path, "ab") as handle:
            handle.write(b"{torn")  # corrupt the shard

        pair.reset_positions()
        with HttpFetcher(cfg.transport, seed=cfg.seed) as fetcher:
            recovered = run_crawl(
                fetcher, seeds=pair.seeds, config=cfg,
                options=RunOptions(run_id="hostile-torn", resume=True),
            )
        assert recovered.finished
        assert recovered.resume_hits == 0  # fresh start, not a resume
        assert recovered.corpus_digest == baseline.corpus_digest
