"""Tests for the signature-driven synthetic page generator."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.deepweb import SyntheticPageGenerator, make_site
from repro.deepweb.corpus import probe_site
from repro.errors import SiteGenerationError


@pytest.fixture(scope="module")
def fitted():
    sample = probe_site(make_site("ecommerce", seed=6), seed=6)
    return SyntheticPageGenerator.fit(sample.pages), sample


class TestFit:
    def test_class_distribution_matches_sample(self, fitted):
        generator, sample = fitted
        observed = Counter(p.class_label for p in sample.pages)
        total = sum(observed.values())
        for label, fraction in generator.class_distribution.items():
            assert abs(fraction - observed[label] / total) < 1e-9

    def test_fit_empty_raises(self):
        with pytest.raises(SiteGenerationError):
            SyntheticPageGenerator.fit([])

    def test_content_features_capped(self, fitted):
        sample = fitted[1]
        generator = SyntheticPageGenerator.fit(sample.pages, max_content_features=10)
        for model in generator.class_models.values():
            assert len(model.term_features) <= 10


class TestGenerate:
    def test_count_and_labels(self, fitted):
        generator, _ = fitted
        pages = generator.generate(200, seed=1)
        assert len(pages) == 200
        labels = {p.class_label for p in pages}
        assert labels <= set(generator.class_distribution)

    def test_distribution_approximately_preserved(self, fitted):
        generator, _ = fitted
        pages = generator.generate(1000, seed=2)
        observed = Counter(p.class_label for p in pages)
        for label, fraction in generator.class_distribution.items():
            assert abs(observed[label] / 1000 - fraction) < 0.08

    def test_signatures_resemble_class(self, fitted):
        generator, sample = fitted
        pages = generator.generate(300, seed=3)
        # Synthetic multi pages should have more of the row tag than
        # synthetic nomatch pages, mirroring the real classes.
        real_multi = [p for p in sample.pages if p.class_label == "multi"]
        if not real_multi:
            pytest.skip("sample has no multi pages")
        row_tag = max(
            real_multi[0].tag_counts(),
            key=lambda t: real_multi[0].tag_counts()[t],
        )
        multi = [p for p in pages if p.class_label == "multi"]
        nomatch = [p for p in pages if p.class_label == "nomatch"]
        if multi and nomatch:
            avg = lambda group: sum(  # noqa: E731
                p.tag_counts.get(row_tag, 0) for p in group
            ) / len(group)
            assert avg(multi) >= avg(nomatch)

    def test_deterministic(self, fitted):
        generator, _ = fitted
        a = generator.generate(50, seed=5)
        b = generator.generate(50, seed=5)
        assert [p.tag_counts for p in a] == [p.tag_counts for p in b]

    def test_zero_pages(self, fitted):
        generator, _ = fitted
        assert generator.generate(0, seed=0) == []

    def test_negative_raises(self, fitted):
        generator, _ = fitted
        with pytest.raises(SiteGenerationError):
            generator.generate(-5)

    def test_sizes_drawn_from_class(self, fitted):
        generator, sample = fitted
        pages = generator.generate(100, seed=7)
        real_sizes = {p.size for p in sample.pages}
        assert all(p.size in real_sizes for p in pages)

    def test_urls_look_like_queries(self, fitted):
        generator, _ = fitted
        pages = generator.generate(10, seed=8)
        assert all("search?q=" in p.url for p in pages)
