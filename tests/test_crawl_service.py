"""End-to-end invariants of the crawl-frontier service.

The ISSUE-8 acceptance criteria live here: an interrupted-then-resumed
crawl produces a byte-identical corpus digest to an uninterrupted
crawl, at any ``--jobs`` level, including under a seeded ``FaultPlan``;
and per-site politeness budgets are never exceeded (asserted via the
lane telemetry counters).
"""

from __future__ import annotations

import pytest

from repro import api
from repro.config import CrawlConfig, ExecutionConfig, RunOptions, ThorConfig
from repro.discovery.web import SimulatedWeb
from repro.errors import ConfigError
from repro.frontier.service import CrawlService, run_crawl
from repro.probe.faults import FaultSpec
from repro.resilience import FaultPlan


def web(**kwargs):
    defaults = dict(n_pages=20, n_portals=3, seed=5, records_per_site=30)
    defaults.update(kwargs)
    return SimulatedWeb(**defaults)


def config(cache_dir=None, jobs=1, **crawl_kwargs):
    return ThorConfig(
        seed=5,
        crawl=CrawlConfig(**crawl_kwargs),
        execution=ExecutionConfig(cache_dir=cache_dir, n_jobs=jobs),
    )


class TestDeterminism:
    def test_repeat_runs_identical(self):
        first = run_crawl(web(), config=config(max_pages=15))
        second = run_crawl(web(), config=config(max_pages=15))
        assert first.corpus_digest == second.corpus_digest
        assert first.pages == second.pages

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_jobs_invariant(self, jobs):
        baseline = run_crawl(web(), config=config(max_pages=15))
        parallel = run_crawl(web(), config=config(max_pages=15, jobs=jobs))
        assert parallel.corpus_digest == baseline.corpus_digest

    def test_batch_size_invariant(self):
        # batch_size is fingerprinted (it can't change mid-crawl), but
        # two fresh crawls that differ only in batching must still walk
        # the same frontier order.
        small = run_crawl(web(), config=config(max_pages=15, batch_size=2))
        large = run_crawl(web(), config=config(max_pages=15, batch_size=12))
        assert small.corpus_digest == large.corpus_digest

    def test_corpus_is_fetch_ordered_bfs(self):
        report = run_crawl(web(), config=config(max_pages=15))
        depths = [page.depth for page in report.pages]
        assert depths == sorted(depths)

    def test_exhaustive_crawl_finishes(self):
        report = run_crawl(web(n_pages=8), config=config(max_pages=500))
        assert report.exhausted and report.finished
        assert report.frontier_pending == 0
        assert report.dedup_hits > 0  # pages cross-link


class TestResume:
    def _drained_then_resumed(self, tmp_path, jobs=1, fault_plan=None):
        cache = str(tmp_path / "cache")
        uninterrupted = run_crawl(
            web(),
            config=config(max_pages=18, jobs=jobs),
            options=RunOptions(fault_plan=fault_plan),
        )
        options = RunOptions(run_id="crawl-a", fault_plan=fault_plan)
        drained = run_crawl(
            web(),
            config=config(
                cache_dir=cache, max_pages=18, max_pages_per_run=7, jobs=jobs
            ),
            options=options,
        )
        assert not drained.finished
        assert drained.frontier_pending > 0
        resumed = run_crawl(
            web(),
            config=config(cache_dir=cache, max_pages=18, jobs=jobs),
            options=RunOptions(
                run_id="crawl-a", resume=True, fault_plan=fault_plan
            ),
        )
        return uninterrupted, drained, resumed

    def test_drain_resume_digest_identical(self, tmp_path):
        uninterrupted, drained, resumed = self._drained_then_resumed(tmp_path)
        assert resumed.resume_hits >= 1
        assert resumed.resume_hits == drained.pages_fetched
        assert resumed.finished
        assert resumed.corpus_digest == uninterrupted.corpus_digest

    def test_drain_resume_digest_identical_parallel(self, tmp_path):
        uninterrupted, _, resumed = self._drained_then_resumed(
            tmp_path, jobs=4
        )
        assert resumed.corpus_digest == uninterrupted.corpus_digest

    def test_drain_resume_under_fault_plan(self, tmp_path):
        # Recoverable chaos: retryable source faults plus torn
        # checkpoint writes. The digest contract must hold through both.
        plan = FaultPlan(
            seed=11,
            source=FaultSpec(throttle_rate=0.1, error_rate=0.05),
            artifact_corrupt_rate=0.05,
        )
        uninterrupted, _, resumed = self._drained_then_resumed(
            tmp_path, fault_plan=plan
        )
        assert resumed.corpus_digest == uninterrupted.corpus_digest

    def test_fault_plan_does_not_change_corpus(self):
        plan = FaultPlan(seed=11, source=FaultSpec(throttle_rate=0.15))
        clean = run_crawl(web(), config=config(max_pages=15))
        chaotic = run_crawl(
            web(),
            config=config(max_pages=15),
            options=RunOptions(fault_plan=plan),
        )
        assert chaotic.corpus_digest == clean.corpus_digest

    def test_resume_of_finished_crawl_is_noop(self, tmp_path):
        cache = str(tmp_path / "cache")
        cfg = config(cache_dir=cache, max_pages=12)
        options = RunOptions(run_id="crawl-b")
        first = run_crawl(web(), config=cfg, options=options)
        again = run_crawl(
            web(),
            config=cfg,
            options=RunOptions(run_id="crawl-b", resume=True),
        )
        assert again.resume_hits == first.pages_fetched
        assert again.rounds == first.rounds  # no new executor work
        assert again.corpus_digest == first.corpus_digest

    def test_resume_without_store_is_config_error(self):
        with pytest.raises(ConfigError, match="persistent artifact store"):
            run_crawl(
                web(),
                config=config(max_pages=5),
                options=RunOptions(run_id="x", resume=True),
            )

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path):
        report = run_crawl(
            web(),
            config=config(cache_dir=str(tmp_path / "cache"), max_pages=10),
            options=RunOptions(run_id="never-ran", resume=True),
        )
        assert report.resume_hits == 0
        assert report.pages_fetched == 10


class TestPoliteness:
    def test_lanes_never_exceed_budget(self):
        # The acceptance criterion: with a tight per-site rate, the
        # spliced grant series of every lane satisfies the token-bucket
        # invariant across the *whole* crawl, and the waits counters
        # prove the budget actually throttled.
        service = CrawlService(
            web(n_pages=10),
            config=config(max_pages=10, batch_size=3, rate=60.0, burst=1),
        )
        report = service.crawl()
        assert report.pages_fetched == 10
        assert service.lanes
        for lane in service.lanes.values():
            assert lane.within_budget(), lane.site
        assert report.politeness_waits > 0
        assert report.budget_granted == report.attempted

    def test_no_rate_means_no_waits(self):
        report = run_crawl(web(n_pages=10), config=config(max_pages=10))
        assert report.politeness_waits == 0
        assert report.budget_granted == 0

    def test_lane_totals_survive_resume(self, tmp_path):
        cache = str(tmp_path / "cache")
        drained = run_crawl(
            web(n_pages=10),
            config=config(
                cache_dir=cache, max_pages=10, max_pages_per_run=4,
                rate=200.0, burst=1,
            ),
            options=RunOptions(run_id="crawl-p"),
        )
        resumed = run_crawl(
            web(n_pages=10),
            config=config(cache_dir=cache, max_pages=10, rate=200.0, burst=1),
            options=RunOptions(run_id="crawl-p", resume=True),
        )
        # Carried counters accumulate: the finished crawl's audit covers
        # both invocations' grants.
        assert resumed.budget_granted == resumed.attempted
        assert resumed.budget_granted > drained.budget_granted


class TestDiscoveryBridge:
    def test_forms_bridged_with_provenance(self):
        source = web(n_portals=3)
        report = run_crawl(source, config=config(max_pages=100))
        assert len(report.forms) == 3  # one unique form per portal
        for discovered in report.forms:
            assert discovered.form.action
            assert discovered.found_on.startswith("http://")
            assert discovered.depth >= 0

    def test_matches_breadth_first_crawler(self):
        # The frontier service and the simple BFS crawler must agree on
        # what the corpus *is* — same fetch set, same unique forms.
        from repro.discovery.crawler import BreadthFirstCrawler

        source = web(n_pages=12)
        bfs = BreadthFirstCrawler(source.fetch, max_pages=500).crawl(
            [source.seed_url]
        )
        report = run_crawl(source, config=config(max_pages=500))
        assert {p.url for p in report.pages} == set(bfs.visited)
        assert sorted(d.form.action for d in report.forms) == sorted(
            bfs.unique_actions
        )

    def test_exclusions_keep_urls_out(self):
        everything = run_crawl(web(), config=config(max_pages=100))
        excluded_prefix = "/page/1"
        filtered = run_crawl(
            web(), config=config(max_pages=100, exclude=(excluded_prefix,))
        )
        assert filtered.excluded > 0
        for page in filtered.pages:
            assert not page.url.split(".org", 1)[1].startswith(
                excluded_prefix
            )
        assert filtered.pages_fetched < everything.pages_fetched

    def test_max_depth_caps_expansion(self):
        shallow = run_crawl(web(), config=config(max_pages=100, max_depth=0))
        assert shallow.pages_fetched >= 1
        assert shallow.frontier_depth == 0
        assert shallow.exhausted  # nothing past the seeds was enqueued

    def test_dead_links_fail_without_aborting(self):
        source = web(n_pages=6)

        def flaky_fetch(url):
            if url.endswith("/page/2"):
                raise KeyError(url)
            return source.fetch(url)

        report = run_crawl(
            flaky_fetch,
            seeds=[source.seed_url],
            config=config(max_pages=50),
        )
        assert report.pages_failed == 1
        assert report.pages_fetched > 0


class TestApiAndService:
    def test_api_crawl_accepts_callable_with_seeds(self):
        source = web(n_pages=8)
        report = api.crawl(
            source.fetch, seeds=[source.seed_url], config=config(max_pages=8)
        )
        via_object = api.crawl(source, config=config(max_pages=8))
        assert report.pages_fetched > 0
        assert report.corpus_digest == via_object.corpus_digest

    def test_fetch_object_without_fetch_method_rejected(self):
        with pytest.raises(ConfigError, match="fetch"):
            run_crawl(object(), seeds=["http://x.org/"])

    def test_seeds_required_for_bare_callable(self):
        with pytest.raises(ConfigError, match="seed"):
            run_crawl(lambda url: "<html></html>")

    def test_default_crawl_id_is_fingerprint_derived(self):
        service = CrawlService(web(), config=config(max_pages=5))
        assert service.crawl_id == f"crawl-{service.fingerprint[:12]}"

    def test_report_format_lines(self):
        from repro.frontier.service import format_crawl_report

        report = run_crawl(web(), config=config(max_pages=10))
        text = format_crawl_report(report)
        assert "crawl report:" in text
        assert "politeness: lanes=" in text
        assert text.strip().endswith(f"sha256:{report.corpus_digest}")
        assert "deferred" not in text  # finished crawl: no resume hint
