"""Cross-backend equivalence: numpy matrix kernels vs python reference.

The python backend is the readable oracle; the numpy backend must
reproduce it. Kernels (cosine, centroids, assignment, Levenshtein)
must agree to 1e-9 or bit-for-bit; the seeded K-Means driver must
produce *identical* labels under both backends. K-medoids is checked
via invariants only: normalized edit distances are small rationals, so
exact mathematical medoid ties are common and each backend breaks them
by the last ulp of its own summation order (see
``repro.cluster.kmedoids``).

Random collections are generated from a seeded ``random.Random`` with
continuous weights (hypothesis supplies only the seed): drawing raw
floats would let hypothesis construct exact cosine ties, which neither
backend promises to break the same way.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

np = pytest.importorskip("numpy")

from repro.cluster.editdist import normalized_levenshtein
from repro.cluster.hierarchical import AverageLinkClusterer
from repro.cluster.kmeans import KMeans
from repro.cluster.kmedoids import KMedoids
from repro.config import resolve_backend
from repro.core.subtree_sets import (
    SubtreeCandidate,
    shape_distance,
    shape_distance_matrix,
)
from repro.html.metrics import SubtreeShape
from repro.vsm.centroid import centroid
from repro.vsm.matrix import (
    VectorSpace,
    centroid_matrix,
    cosine_matrix,
    pairwise_normalized_levenshtein,
    weighted_space,
)
from repro.vsm.similarity import cosine_similarity
from repro.vsm.vector import SparseVector
from repro.vsm.weighting import raw_tf_vector, tfidf_vectors

FEATURES = [f"f{i}" for i in range(8)]

seeds = st.integers(0, 10_000)


def random_vectors(seed: int, n: int, allow_zero: bool = False) -> list[SparseVector]:
    """A seeded collection with continuous weights (no adversarial ties)."""
    rng = random.Random(seed)
    vectors = []
    for i in range(n):
        if allow_zero and rng.random() < 0.1:
            vectors.append(SparseVector())
            continue
        chosen = rng.sample(FEATURES, rng.randint(1, len(FEATURES)))
        vectors.append(
            SparseVector({f: rng.uniform(0.05, 5.0) for f in chosen})
        )
    return vectors


class TestKernelAgreement:
    @given(seeds, st.integers(2, 12))
    def test_cosine_matrix_matches_scalar(self, seed, n):
        vectors = random_vectors(seed, n, allow_zero=True)
        space = VectorSpace.build(vectors)
        sims = cosine_matrix(space.matrix, space.matrix, space.norms, space.norms)
        for i, a in enumerate(vectors):
            for j, b in enumerate(vectors):
                assert math.isclose(
                    float(sims[i, j]),
                    cosine_similarity(a, b),
                    rel_tol=0.0,
                    abs_tol=1e-9,
                )

    @given(seeds, st.integers(2, 12), st.integers(1, 4))
    def test_centroid_matrix_matches_scalar(self, seed, n, k):
        vectors = random_vectors(seed, n)
        rng = random.Random(seed + 1)
        labels = [rng.randrange(k) for _ in range(n)]
        space = VectorSpace.build(vectors)
        centroids, counts = centroid_matrix(
            space.matrix, np.asarray(labels), k
        )
        for cluster in range(k):
            members = [v for v, lab in zip(vectors, labels) if lab == cluster]
            assert counts[cluster] == len(members)
            if not members:
                assert not np.any(centroids[cluster])
                continue
            reference = centroid(members)
            recovered = space.to_sparse(centroids[cluster])
            for feature in reference.features() | recovered.features():
                assert math.isclose(
                    recovered.get(feature),
                    reference.get(feature),
                    rel_tol=0.0,
                    abs_tol=1e-9,
                )

    @given(seeds, st.integers(3, 12), st.integers(1, 3))
    def test_assignment_matches_scalar(self, seed, n, k):
        vectors = random_vectors(seed, n)
        # Centers are always centroids of *disjoint* member lists in the
        # driver — and their features never fall outside the interned
        # vocabulary. (Overlapping samples could produce two
        # mathematically identical centers, whose tied cosines neither
        # backend promises to break the same way.)
        rng = random.Random(seed + 7)
        indices = list(range(n))
        rng.shuffle(indices)
        chunk = max(1, n // k)
        groups = [indices[start : start + chunk] for start in range(0, k * chunk, chunk)]
        centers = [centroid([vectors[i] for i in group]) for group in groups if group]
        space = VectorSpace.build(vectors)
        sims = cosine_matrix(
            space.matrix, space.encode(centers), space.norms, None
        )
        numpy_labels = np.argmax(sims, axis=1)
        for i, vector in enumerate(vectors):
            best, best_sim = 0, -math.inf
            for j, center in enumerate(centers):
                s = cosine_similarity(vector, center)
                if s > best_sim:
                    best, best_sim = j, s
            assert int(numpy_labels[i]) == best

    @given(st.lists(st.text(alphabet="abrtd", max_size=12), min_size=1, max_size=10))
    def test_pairwise_levenshtein_matches_scalar(self, strings):
        matrix = pairwise_normalized_levenshtein(strings)
        for i, a in enumerate(strings):
            for j, b in enumerate(strings):
                # Exact same division of the same integer edit distance.
                assert float(matrix[i][j]) == normalized_levenshtein(a, b)

    @given(seeds, st.integers(1, 10), st.sampled_from(["tfidf", "raw"]))
    def test_weighted_space_matches_scalar_weighting(self, seed, n, weighting):
        rng = random.Random(seed)
        maps = [
            {
                f: rng.randint(1, 30)
                for f in rng.sample(FEATURES, rng.randint(0, len(FEATURES)))
            }
            for _ in range(n)
        ]
        space = weighted_space(maps, weighting)
        reference = (
            tfidf_vectors(maps)
            if weighting == "tfidf"
            else [raw_tf_vector(m) for m in maps]
        )
        assert space.n == n
        for row, expected in enumerate(reference):
            recovered = space.to_sparse(space.matrix[row])
            for feature in expected.features() | recovered.features():
                assert math.isclose(
                    recovered.get(feature),
                    expected.get(feature),
                    rel_tol=0.0,
                    abs_tol=1e-9,
                )

    def test_weighted_space_rejects_unknown_weighting(self):
        with pytest.raises(ValueError):
            weighted_space([{"a": 1}], "binary")

    @given(
        st.text(alphabet="abcxy", min_size=33, max_size=40),
        st.text(alphabet="abcxy", min_size=33, max_size=40),
    )
    def test_rowwise_levenshtein_kernel(self, a, b):
        # Long enough (33*33 > 1024) to force the vectorized DP path.
        matrix = pairwise_normalized_levenshtein([a], [b])
        assert float(matrix[0][0]) == normalized_levenshtein(a, b)


def _partition(result):
    members = result.clustering.members
    return {
        frozenset(members(c))
        for c in range(result.clustering.k)
        if members(c)
    }


class TestKMeansEquivalence:
    @settings(deadline=None, max_examples=25)
    @given(seeds, st.integers(4, 16), st.integers(1, 4), st.sampled_from(["random", "kmeans++"]))
    def test_identical_labels_and_cohesion(self, seed, n, k, init):
        # A single restart exercises one full seeded run of each kernel;
        # those must agree label-for-label.
        vectors = random_vectors(seed, n, allow_zero=True)
        kwargs = dict(k=k, restarts=1, seed=seed, init=init)
        py = KMeans(backend="python", **kwargs).fit(vectors)
        npy = KMeans(backend="numpy", **kwargs).fit(vectors)
        assert npy.clustering.labels == py.clustering.labels
        assert math.isclose(
            npy.internal_similarity,
            py.internal_similarity,
            rel_tol=0.0,
            abs_tol=1e-9,
        )
        assert npy.iterations == py.iterations
        for c_np, c_py in zip(npy.centroids, py.centroids):
            for feature in c_np.features() | c_py.features():
                assert math.isclose(
                    c_np.get(feature), c_py.get(feature), rel_tol=0.0, abs_tol=1e-9
                )

    @settings(deadline=None, max_examples=25)
    @given(seeds, st.integers(4, 16), st.integers(1, 4), st.sampled_from(["random", "kmeans++"]))
    def test_restart_selection_same_partition(self, seed, n, k, init):
        # With restarts, two starts can converge to equal-cohesion
        # optima (equal up to summation order); each backend may then
        # keep a different copy. The kept partitions can only differ in
        # relabeling and in where zero vectors land (they contribute no
        # cohesion anywhere) — quality always matches.
        vectors = random_vectors(seed, n, allow_zero=True)
        kwargs = dict(k=k, restarts=4, seed=seed, init=init)
        py = KMeans(backend="python", **kwargs).fit(vectors)
        npy = KMeans(backend="numpy", **kwargs).fit(vectors)
        nonzero = {i for i, v in enumerate(vectors) if not v.is_zero()}
        restrict = lambda partition: {
            frozenset(cluster & nonzero)
            for cluster in partition
            if cluster & nonzero
        }
        assert restrict(_partition(npy)) == restrict(_partition(py))
        assert math.isclose(
            npy.internal_similarity,
            py.internal_similarity,
            rel_tol=0.0,
            abs_tol=1e-9,
        )


class TestKMedoidsEquivalence:
    @settings(deadline=None, max_examples=20)
    @given(seeds, st.integers(4, 14), st.integers(1, 3))
    def test_invariants_match(self, seed, n, k):
        rng = random.Random(seed)
        urls = [
            "/list?p=" + "".join(rng.choices("abcd", k=rng.randint(1, 6)))
            for _ in range(n)
        ]
        kwargs = dict(
            k=k, distance=normalized_levenshtein, restarts=3, seed=seed
        )
        py = KMedoids(backend="python", **kwargs).fit(urls)
        npy = KMedoids(backend="numpy", **kwargs).fit(urls)
        for result in (py, npy):
            assert len(result.clustering.labels) == n
            assert len(result.medoid_indices) == min(k, n)
            # Each medoid actually carries its own cluster's label.
            for cluster, medoid in enumerate(result.medoid_indices):
                if result.clustering.members(cluster):
                    assert result.clustering.labels[medoid] == cluster
            recomputed = sum(
                normalized_levenshtein(
                    url, urls[result.medoid_indices[label]]
                )
                for url, label in zip(urls, result.clustering.labels)
            )
            assert math.isclose(
                result.total_distance, recomputed, rel_tol=0.0, abs_tol=1e-9
            )

    def test_precomputed_matrix_short_circuits_distance(self):
        urls = ["/a", "/ab", "/abc", "/b", "/bc"]
        matrix = pairwise_normalized_levenshtein(urls)

        def forbidden(a, b):  # pragma: no cover - must never run
            raise AssertionError("distance called despite precomputed matrix")

        result = KMedoids(k=2, distance=forbidden, restarts=2, seed=0).fit(
            urls, precomputed=matrix
        )
        assert len(result.clustering.labels) == len(urls)


class TestHierarchicalEquivalence:
    @settings(deadline=None, max_examples=20)
    @given(seeds, st.integers(3, 12), st.integers(1, 3))
    def test_same_partition(self, seed, n, k):
        vectors = random_vectors(seed, n)
        py = AverageLinkClusterer(k=k, backend="python").fit(vectors)
        npy = AverageLinkClusterer(k=k, backend="numpy").fit(vectors)
        as_partition = lambda result: {
            frozenset(result.clustering.members(c))
            for c in range(result.clustering.k)
            if result.clustering.members(c)
        }
        assert as_partition(npy) == as_partition(py)


class TestShapeDistanceEquivalence:
    def _cand(self, rng):
        code = "".join(rng.choices("hbtdr", k=rng.randint(1, 8)))
        return SubtreeCandidate(
            page_index=0,
            node=None,
            shape=SubtreeShape(
                "html/body", rng.randint(0, 9), rng.randint(1, 6), rng.randint(1, 40)
            ),
            code_path=code,
        )

    @settings(deadline=None, max_examples=25)
    @given(seeds, st.integers(1, 6), st.integers(1, 6))
    def test_matrix_matches_scalar_bitwise(self, seed, na, nb):
        rng = random.Random(seed)
        a = [self._cand(rng) for _ in range(na)]
        b = [self._cand(rng) for _ in range(nb)]
        weights = (0.4, 0.2, 0.2, 0.2)
        matrix = shape_distance_matrix(a, b, weights)
        for i, ca in enumerate(a):
            for j, cb in enumerate(b):
                assert float(matrix[i][j]) == shape_distance(ca, cb, weights)


def _random_tag_tree(rng: random.Random, depth: int = 4, width: int = 3):
    from repro.html.tree import ContentNode, TagNode

    tags = ["div", "p", "span", "table", "tr", "td", "ul", "li"]

    def build(d):
        node = TagNode(rng.choice(tags))
        if d > 0:
            for _ in range(rng.randrange(width + 1)):
                if rng.random() < 0.3:
                    node.children.append(ContentNode("x"))
                else:
                    node.children.append(build(d - 1))
        return node

    root = TagNode("html")
    for _ in range(rng.randrange(1, width + 1)):
        root.children.append(build(depth))
    return root


class TestTreeEditEquivalence:
    """The vectorized Zhang–Shasha kernel must agree with the scalar DP
    bitwise (unit costs are small integers, exact in float64)."""

    @settings(deadline=None, max_examples=25)
    @given(seeds)
    def test_hybrid_matches_scalar_bitwise(self, seed):
        from repro.cluster.treeedit import tree_edit_distance

        rng = random.Random(seed)
        a, b = _random_tag_tree(rng), _random_tag_tree(rng)
        py = tree_edit_distance(a, b, backend="python")
        npy = tree_edit_distance(a, b, backend="numpy")
        assert npy == py

    def test_forced_vector_kernel_matches_scalar_bitwise(self, monkeypatch):
        # Drop the width threshold so *every* keyroot pair runs the
        # vectorized rows, not just the wide ones the hybrid picks.
        from repro.cluster import treeedit

        monkeypatch.setattr(treeedit, "_VECTOR_MIN_COLS", 1)
        for seed in range(15):
            rng = random.Random(seed)
            a, b = _random_tag_tree(rng), _random_tag_tree(rng)
            py = treeedit.tree_edit_distance(a, b, backend="python")
            npy = treeedit.tree_edit_distance(a, b, backend="numpy")
            assert npy == py

    def test_custom_costs_match(self, monkeypatch):
        from repro.cluster import treeedit

        monkeypatch.setattr(treeedit, "_VECTOR_MIN_COLS", 1)
        rng = random.Random(99)
        a, b = _random_tag_tree(rng), _random_tag_tree(rng)
        variants = [
            dict(relabel_cost=lambda x, y: 0.0 if x == y else 0.5),
            dict(insert_cost=2.0, delete_cost=1.5),
        ]
        for kwargs in variants:
            py = treeedit.tree_edit_distance(a, b, backend="python", **kwargs)
            npy = treeedit.tree_edit_distance(a, b, backend="numpy", **kwargs)
            assert npy == py

    def test_normalized_passes_backend_through(self):
        from repro.cluster.treeedit import normalized_tree_edit_distance

        rng = random.Random(3)
        a, b = _random_tag_tree(rng), _random_tag_tree(rng)
        py = normalized_tree_edit_distance(a, b, backend="python")
        npy = normalized_tree_edit_distance(a, b, backend="numpy")
        assert npy == py
        assert 0.0 <= npy <= 1.0


class TestParallelEquivalence:
    """Seeded restart fan-out must be bitwise identical to the serial
    loop: per-restart seed streams make each restart a pure function of
    (data, restart seed), so the execution plan cannot change labels."""

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_kmeans_parallel_matches_serial(self, backend):
        for seed in (0, 7):
            vectors = random_vectors(seed, 14, allow_zero=True)
            kwargs = dict(k=3, restarts=6, seed=seed, backend=backend)
            serial = KMeans(n_jobs=1, **kwargs).fit(vectors)
            parallel = KMeans(n_jobs=2, **kwargs).fit(vectors)
            assert parallel.clustering.labels == serial.clustering.labels
            assert parallel.internal_similarity == serial.internal_similarity
            assert parallel.iterations == serial.iterations

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_kmedoids_parallel_matches_serial(self, backend):
        rng = random.Random(5)
        urls = [
            "/list?p=" + "".join(rng.choices("abcd", k=rng.randint(1, 6)))
            for _ in range(12)
        ]
        kwargs = dict(
            k=3,
            distance=normalized_levenshtein,
            restarts=6,
            seed=5,
            backend=backend,
        )
        serial = KMedoids(n_jobs=1, **kwargs).fit(urls)
        parallel = KMedoids(n_jobs=3, **kwargs).fit(urls)
        assert parallel.clustering.labels == serial.clustering.labels
        assert parallel.medoid_indices == serial.medoid_indices
        assert parallel.total_distance == serial.total_distance

    def test_restart_seed_streams_are_deterministic(self):
        from repro.runtime import restart_seed_streams

        assert restart_seed_streams(7, 3, "kmeans") == [
            "kmeans:7:0",
            "kmeans:7:1",
            "kmeans:7:2",
        ]
        # Unseeded streams draw fresh entropy, one per restart.
        unseeded = restart_seed_streams(None, 4, "kmeans")
        assert len(unseeded) == 4
        assert len(set(unseeded)) == 4

    def test_run_restarts_orders_results(self):
        from repro.runtime import run_restarts

        # Inline path (n_jobs=1) keeps seed order.
        results = run_restarts(_echo_worker, None, ["a", "b", "c"], n_jobs=1)
        assert results == ["a", "b", "c"]
        # Fanned-out path flattens chunk results back into seed order.
        results = run_restarts(_echo_worker, None, list("abcde"), n_jobs=2)
        assert results == list("abcde")


def _echo_worker(payload, seeds):
    return list(seeds)


class TestBackendResolution:
    def test_explicit_backends(self):
        assert resolve_backend("python") == "python"
        assert resolve_backend("numpy") == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(Exception):
            resolve_backend("fortran")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert resolve_backend(None) == "python"
