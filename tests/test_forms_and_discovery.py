"""Tests for search-form detection and the discovery crawler."""

from __future__ import annotations

import pytest

from repro.discovery import BreadthFirstCrawler, SimulatedWeb
from repro.errors import SiteGenerationError
from repro.html import parse
from repro.html.forms import FormField, SearchForm, find_search_forms


def forms_in(html):
    return find_search_forms(parse(html))


class TestFindSearchForms:
    def test_simple_search_form(self):
        forms = forms_in(
            '<form action="/search" method="get">'
            '<input type="text" name="q"><input type="submit"></form>'
        )
        assert len(forms) == 1
        assert forms[0].action == "/search"
        assert forms[0].method == "get"

    def test_typeless_input_counts_as_text(self):
        forms = forms_in('<form action="/s"><input name="query"></form>')
        assert len(forms) == 1

    def test_textarea_counts_as_text(self):
        forms = forms_in('<form action="/s"><textarea name="q"></textarea></form>')
        assert len(forms) == 1

    def test_login_form_rejected(self):
        forms = forms_in(
            '<form action="/login">'
            '<input type="text" name="username">'
            '<input type="password" name="password"></form>'
        )
        assert forms == []

    def test_checkout_form_rejected(self):
        forms = forms_in(
            '<form action="/buy">'
            '<input type="text" name="card"><input type="text" name="cvv">'
            "</form>"
        )
        assert forms == []

    def test_button_only_form_rejected(self):
        forms = forms_in('<form action="/go"><input type="submit"></form>')
        assert forms == []

    def test_many_text_boxes_rejected(self):
        inputs = "".join(
            f'<input type="text" name="f{i}">' for i in range(4)
        )
        assert forms_in(f'<form action="/reg">{inputs}</form>') == []

    def test_multiple_forms_in_document_order(self):
        forms = forms_in(
            '<form action="/a"><input name="q"></form>'
            '<form action="/b"><input name="q"></form>'
        )
        assert [f.action for f in forms] == ["/a", "/b"]

    def test_select_fields_modeled(self):
        (form,) = forms_in(
            '<form action="/s"><input name="q">'
            '<select name="category"><option>All</option></select></form>'
        )
        assert any(f.input_type == "select" for f in form.fields)


class TestSearchForm:
    def test_query_field_prefers_search_names(self):
        form = SearchForm(
            action="/s",
            method="get",
            fields=(
                FormField("notes", "text"),
                FormField("q", "text"),
            ),
        )
        assert form.query_field.name == "q"

    def test_query_field_falls_back_to_first_text(self):
        form = SearchForm(
            action="/s",
            method="get",
            fields=(FormField("anything", "text"),),
        )
        assert form.query_field.name == "anything"

    def test_submit_url(self):
        form = SearchForm(
            action="http://h/search",
            method="get",
            fields=(FormField("q", "text"),),
        )
        assert form.submit_url("cat") == "http://h/search?q=cat"

    def test_submit_url_existing_query_string(self):
        form = SearchForm(
            action="http://h/search?lang=en",
            method="get",
            fields=(FormField("q", "text"),),
        )
        assert form.submit_url("cat") == "http://h/search?lang=en&q=cat"


class TestSimulatedWeb:
    def test_deterministic(self):
        a = SimulatedWeb(n_pages=30, n_portals=3, seed=5)
        b = SimulatedWeb(n_pages=30, n_portals=3, seed=5)
        assert a.fetch(a.seed_url) == b.fetch(b.seed_url)

    def test_fetch_unknown_raises(self):
        web = SimulatedWeb(seed=1)
        with pytest.raises(KeyError):
            web.fetch("http://elsewhere.example/")

    def test_page_index_roundtrip(self):
        web = SimulatedWeb(n_pages=10, n_portals=2, seed=2)
        assert web.page_index(web.url(3)) == 3
        assert web.page_index("http://other/") is None
        assert web.page_index(web.url(3) + "9999") is None

    def test_invalid_shapes_raise(self):
        with pytest.raises(SiteGenerationError):
            SimulatedWeb(n_pages=1)
        with pytest.raises(SiteGenerationError):
            SimulatedWeb(n_pages=5, n_portals=5)

    def test_site_for_form_action(self):
        web = SimulatedWeb(n_pages=30, n_portals=2, seed=3)
        site = web.sites[0]
        assert web.site_for_form_action(
            f"http://{site.theme.host}/search"
        ) is site
        assert web.site_for_form_action("http://unknown/") is None


class TestBreadthFirstCrawler:
    @pytest.fixture(scope="class")
    def web(self):
        return SimulatedWeb(n_pages=60, n_portals=6, seed=1)

    def test_discovers_all_reachable_portals(self, web):
        report = BreadthFirstCrawler(web.fetch, max_pages=300).crawl(
            [web.seed_url]
        )
        assert len(report.forms) >= 4  # most portals reachable
        for discovered in report.forms:
            assert web.site_for_form_action(discovered.form.action)

    def test_forms_unique_by_action(self, web):
        report = BreadthFirstCrawler(web.fetch, max_pages=300).crawl(
            [web.seed_url]
        )
        actions = report.unique_actions
        assert len(actions) == len(set(actions))

    def test_budget_respected(self, web):
        report = BreadthFirstCrawler(web.fetch, max_pages=5).crawl(
            [web.seed_url]
        )
        assert report.pages_fetched <= 5

    def test_depths_nondecreasing(self, web):
        report = BreadthFirstCrawler(web.fetch, max_pages=300).crawl(
            [web.seed_url]
        )
        depths = [d.depth for d in report.forms]
        assert depths == sorted(depths)

    def test_fetch_failures_tolerated(self):
        def flaky(url):
            if url.endswith("bad"):
                raise IOError("dead link")
            return ('<a href="http://x/bad"></a>'
                    '<form action="/s"><input name="q"></form>')

        report = BreadthFirstCrawler(flaky, max_pages=10).crawl(["http://x/ok"])
        assert report.pages_failed == 1
        assert report.pages_fetched == 1
        assert len(report.forms) == 1

    def test_non_http_links_skipped(self):
        def fetch(url):
            return '<a href="mailto:x@y"></a><a href="javascript:void(0)"></a>'

        report = BreadthFirstCrawler(fetch, max_pages=10).crawl(["http://a/"])
        assert report.pages_fetched == 1

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            BreadthFirstCrawler(lambda u: "", max_pages=0)

    def test_cycle_termination(self):
        def fetch(url):
            return f'<a href="http://a/1"></a><a href="http://a/2"></a>'

        report = BreadthFirstCrawler(fetch, max_pages=50).crawl(["http://a/1"])
        assert report.frontier_exhausted
        assert report.pages_fetched <= 3
