"""Incremental re-extraction: drift tiers, model reuse, digest parity.

The invariants under test (ISSUE: incremental re-extraction):

- with no template drift, an ``incremental=True`` rerun replays every
  page from the stored model and its result digest is **bitwise
  identical** to the full refit that seeded it — at ``--jobs 1`` and
  ``--jobs 4``, on every one of the seven deep-web genres;
- a content-only delta is assigned to the stored Phase-1 clusters
  without a refit, and the digest matches a from-scratch run over the
  same mutated corpus;
- structural drift past the threshold falls back to a full refit whose
  digest matches a cold run, counted as a drift event;
- the drift gate, fingerprints, and model bundle behave at the edges
  (mode overrides, unsupported configurations, containment math).
"""

from __future__ import annotations

import tempfile

import pytest

from hypothesis import given, settings, strategies as st

from repro.config import (
    ExecutionConfig,
    IncrementalConfig,
    ProbeConfig,
    RunOptions,
    ThorConfig,
)
from repro.core.page import Page
from repro.core.probing import QueryProber
from repro.core.thor import Thor
from repro.deepweb import make_site
from repro.deepweb.domains import DOMAINS
from repro.deepweb.templates import (
    TemplateDriftSource,
    mutate_page_structure,
    mutate_page_text,
)
from repro.incremental import (
    cluster_fingerprint,
    containment,
    fingerprint_drift,
    jaccard_similarity,
    load_model,
    page_content_key,
    page_fingerprint,
    site_identity,
)
from repro.io.export import result_digest
from repro.vsm.matrix import HAVE_NUMPY

ALL_DOMAINS = sorted(DOMAINS)

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="model persistence requires the numpy backend"
)


def _config(cache_dir: str, jobs: int = 1, **overrides) -> ThorConfig:
    return ThorConfig(
        probing=ProbeConfig(dictionary_queries=12, nonsense_queries=2),
        seed=7,
        execution=ExecutionConfig(cache_dir=cache_dir, n_jobs=jobs),
        **overrides,
    )


def _site(domain: str):
    return make_site(domain=domain, seed=7, records=60)


def _drift_source(domain: str, mutate, n: int = 2):
    """The site with the first ``n`` probe terms' pages mutated —
    exactly the pages the run will fetch for those terms."""
    config = _config(cache_dir="")
    terms = QueryProber(config.probing, seed=config.seed).select_terms()
    return TemplateDriftSource(
        _site(domain), terms=terms[:n], mutate=mutate, seed=7
    )


#: (domain, variant) → (TemporaryDirectory, digest, seeding Thor, result).
#: The seeding Thor is kept alive so tests can re-publish the pristine
#: model after a refresh overwrote the (last-writer-wins) slot.
_SEEDED: dict = {}


def _seeded(domain: str, variant: str):
    key = (domain, variant)
    if key not in _SEEDED:
        tmp = tempfile.TemporaryDirectory()
        thor = Thor(_config(tmp.name))
        result = thor.run(_site(domain))
        _SEEDED[key] = (tmp, result_digest(result), thor, result)
    tmp, digest, thor, result = _SEEDED[key]
    assert thor.persist_model(result)
    return tmp.name, digest


#: (domain, mutator-name) → digest of a cold run over the drifted corpus.
_COLD_DRIFTED: dict = {}


def _cold_drifted_digest(domain: str, mutate) -> str:
    key = (domain, mutate.__name__)
    if key not in _COLD_DRIFTED:
        tmp = tempfile.TemporaryDirectory()
        result = Thor(_config(tmp.name)).run(_drift_source(domain, mutate))
        _COLD_DRIFTED[key] = (tmp, result_digest(result))
    return _COLD_DRIFTED[key][1]


@needs_numpy
class TestIncrementalInvariants:
    @settings(max_examples=10, deadline=None)
    @given(
        domain=st.sampled_from(ALL_DOMAINS), jobs=st.sampled_from([1, 4])
    )
    def test_no_drift_replay_is_bitwise_identical(self, domain, jobs):
        cache_dir, digest = _seeded(domain, "replay")
        thor = Thor(_config(cache_dir, jobs=jobs))
        result = thor.run(_site(domain), options=RunOptions(incremental=True))
        assert result_digest(result) == digest
        counters = thor.report().incremental
        assert counters.get("skipped", 0) == len(result.pages)
        assert counters.get("assigned", 0) == 0
        assert counters.get("refit", 0) == 0
        assert counters.get("model_misses", 0) == 0

    @settings(max_examples=10, deadline=None)
    @given(
        domain=st.sampled_from(ALL_DOMAINS), jobs=st.sampled_from([1, 4])
    )
    def test_drift_fallback_matches_cold_run(self, domain, jobs):
        cache_dir, _ = _seeded(domain, "drift")
        cold = _cold_drifted_digest(domain, mutate_page_structure)
        thor = Thor(_config(cache_dir, jobs=jobs))
        result = thor.run(
            _drift_source(domain, mutate_page_structure),
            options=RunOptions(incremental=True),
        )
        assert result_digest(result) == cold
        counters = thor.report().incremental
        assert counters.get("drift_events", 0) == 1
        assert counters.get("refit", 0) == len(result.pages)
        assert counters.get("skipped", 0) == 0

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_text_delta_assigns_without_refit(self, jobs):
        domain = "jobs"
        cache_dir, _ = _seeded(domain, f"text-{jobs}")
        cold = _cold_drifted_digest(domain, mutate_page_text)
        thor = Thor(_config(cache_dir, jobs=jobs))
        result = thor.run(
            _drift_source(domain, mutate_page_text),
            options=RunOptions(incremental=True),
        )
        assert result_digest(result) == cold
        counters = thor.report().incremental
        assert counters.get("assigned", 0) == 2
        assert counters.get("refit", 0) == 0
        assert counters.get("skipped", 0) == len(result.pages) - 2


@needs_numpy
class TestDriftModes:
    def test_mode_refit_never_touches_the_model(self):
        domain = "music"
        cache_dir, digest = _seeded(domain, "mode-refit")
        config = _config(
            cache_dir, incremental=IncrementalConfig(mode="refit")
        )
        thor = Thor(config)
        result = thor.run(_site(domain), options=RunOptions(incremental=True))
        assert result_digest(result) == digest
        counters = thor.report().incremental
        assert counters.get("refit", 0) == len(result.pages)
        assert counters.get("skipped", 0) == 0

    def test_mode_assign_rides_through_structural_drift(self):
        domain = "music"
        cache_dir, _ = _seeded(domain, "mode-assign")
        config = _config(
            cache_dir, incremental=IncrementalConfig(mode="assign")
        )
        thor = Thor(config)
        thor.run(
            _drift_source(domain, mutate_page_structure),
            options=RunOptions(incremental=True),
        )
        counters = thor.report().incremental
        assert counters.get("assigned", 0) == 2
        assert counters.get("refit", 0) == 0
        assert counters.get("drift_events", 0) == 0

    def test_threshold_zero_makes_any_delta_a_refit(self):
        domain = "music"
        cache_dir, _ = _seeded(domain, "threshold")
        config = _config(
            cache_dir, incremental=IncrementalConfig(drift_threshold=0.0)
        )
        thor = Thor(config)
        result = thor.run(
            _drift_source(domain, mutate_page_structure),
            options=RunOptions(incremental=True),
        )
        counters = thor.report().incremental
        assert counters.get("drift_events", 0) == 1
        assert counters.get("refit", 0) == len(result.pages)

    def test_bad_incremental_config_refuses(self):
        with pytest.raises(ValueError):
            IncrementalConfig(drift_threshold=1.5)
        with pytest.raises(ValueError):
            IncrementalConfig(mode="sometimes")


@needs_numpy
class TestModelBundle:
    def test_run_persists_a_loadable_model(self, tmp_path):
        config = _config(str(tmp_path))
        thor = Thor(config)
        result = thor.run(_site("library"))
        from repro.resilience import config_fingerprint
        from repro.runtime import artifact_store_for

        store = artifact_store_for(config.execution)
        model = load_model(
            store,
            site_identity([p.url for p in result.pages]),
            config_fingerprint(config),
        )
        assert model is not None
        assert model.page_keys == tuple(
            page_content_key(p.html) for p in result.pages
        )
        assert len(model.labels) == len(result.pages)
        assert model.centroids.shape == (model.k, len(model.vocabulary))
        assert len(model.fingerprints) == model.k
        # Every cluster record replays against keys the model knows.
        known = set(model.page_keys)
        for record in model.clusters:
            assert set(record.page_keys) <= known

    def test_unsupported_configuration_never_persists(self, tmp_path):
        from dataclasses import replace

        base = _config(str(tmp_path))
        config = replace(
            base, clustering=replace(base.clustering, configuration="size")
        )
        thor = Thor(config)
        thor.run(_site("library"))
        rerun = Thor(config)
        result = rerun.run(
            _site("library"), options=RunOptions(incremental=True)
        )
        counters = rerun.report().incremental
        # No model to reuse: the rerun is an honest, counted full refit.
        assert counters.get("model_misses", 0) == 1
        assert counters.get("refit", 0) == len(result.pages)


class TestFingerprints:
    def _tree(self, html: str):
        return Page(html).tree

    def test_text_change_keeps_fingerprint(self):
        a = self._tree("<html><body><p>one</p></body></html>")
        b = self._tree("<html><body><p>two words now</p></body></html>")
        assert page_fingerprint(a) == page_fingerprint(b)

    def test_structural_change_moves_fingerprint(self):
        a = self._tree("<html><body><p>one</p></body></html>")
        b = self._tree(
            "<html><body><blockquote><p>one</p></blockquote></body></html>"
        )
        assert page_fingerprint(a) != page_fingerprint(b)

    def test_repeated_positions_collapse(self):
        a = self._tree("<html><body><ul><li>x</li></ul></body></html>")
        b = self._tree(
            "<html><body><ul><li>x</li><li>y</li><li>z</li></ul></body></html>"
        )
        assert page_fingerprint(a) == page_fingerprint(b)

    def test_containment_and_jaccard_edges(self):
        empty = frozenset()
        some = frozenset({1, 2, 3, 4})
        assert containment(empty, some) == 1.0
        assert containment(some, some) == 1.0
        assert containment(some, frozenset({1, 2})) == 0.5
        assert jaccard_similarity(empty, empty) == 1.0
        assert jaccard_similarity(some, some) == 1.0

    def test_small_page_in_big_cluster_does_not_drift(self):
        # The error-stub case: every path known, cluster much larger.
        page = frozenset({1, 2})
        cluster = frozenset(range(100))
        assert fingerprint_drift(page, [cluster]) == 0.0

    def test_no_clusters_is_maximal_drift(self):
        assert fingerprint_drift(frozenset({1}), []) == 1.0

    def test_cluster_fingerprint_is_the_union(self):
        assert cluster_fingerprint(
            [frozenset({1}), frozenset({2, 3})]
        ) == frozenset({1, 2, 3})


class TestMutators:
    def test_text_mutation_is_content_only(self):
        html = _site("jobs").query("engineer").html
        mutated = mutate_page_text(html, seed=1)
        assert mutated != html
        assert page_fingerprint(Page(html).tree) == page_fingerprint(
            Page(mutated).tree
        )
        assert page_content_key(mutated) != page_content_key(html)

    def test_structure_mutation_displaces_paths(self):
        html = _site("jobs").query("engineer").html
        mutated = mutate_page_structure(html, seed=1)
        before = page_fingerprint(Page(html).tree)
        after = page_fingerprint(Page(mutated).tree)
        assert fingerprint_drift(after, [before]) > 0.5

    def test_drift_source_only_touches_selected_terms(self):
        source = _drift_source("jobs", mutate_page_text, n=2)
        config = _config(cache_dir="")
        terms = QueryProber(config.probing, seed=config.seed).select_terms()
        base = _site("jobs")
        assert source.query(terms[0]).html != base.query(terms[0]).html
        assert source.query(terms[5]).html == base.query(terms[5]).html
