"""Fast integration checks of the paper's headline shapes.

These are miniature versions of the benches — small enough for the
test suite, strong enough to catch a regression that would invalidate
the reproduction (e.g. TFIDF tags losing to random clustering, or the
combined subtree distance losing to a single feature).
"""

from __future__ import annotations

import pytest

from repro.config import ProbeConfig
from repro.deepweb.corpus import generate_corpus
from repro.eval.experiments import (
    clustering_quality_experiment,
    overall_experiment,
    phase2_distance_experiment,
    similarity_histogram_experiment,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(
        n_sites=3, probe_config=ProbeConfig(40, 4), seed=8
    )


class TestPaperShapes:
    def test_fig4_shape_ttag_beats_naive_baselines(self, corpus):
        results = clustering_quality_experiment(
            corpus, ["ttag", "url", "rand"], [30], repeats=2, seed=8
        )
        ttag = results["ttag"][30].entropy
        assert ttag < 0.25
        assert ttag < results["url"][30].entropy
        assert ttag < results["rand"][30].entropy

    def test_fig8_shape_combined_metric_strong(self, corpus):
        scores = phase2_distance_experiment(corpus, seed=8)
        combined = scores["All"]
        assert combined.precision >= 0.85
        # Combined at least matches the weakest single features.
        assert combined.precision >= scores["D"].precision
        assert combined.precision >= scores["F"].precision

    def test_fig9_shape_tfidf_bimodal(self, corpus):
        hist = similarity_histogram_experiment(
            corpus, use_tfidf=True, seed=8
        )
        counts = [c for _, c in hist]
        extremes = counts[0] + counts[-1]
        middle = sum(counts[1:-1])
        assert extremes > middle

    def test_fig10_shape_ttag_ahead_of_random(self, corpus):
        scores = overall_experiment(corpus, ["ttag", "rand"], seed=8)
        assert scores["ttag"].precision >= 0.8
        assert scores["ttag"].f1 > 3 * scores["rand"].f1
