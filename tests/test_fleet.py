"""Tests for fleet orchestration (``repro.fleet``).

The invariant every test here circles: however a fleet is sharded,
quota-scheduled, chaos-injected, interrupted, or resumed, every
``done`` site's result digest is bitwise-identical to a sequential
``api.run`` of that site — and the aggregate fleet digest follows.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import api
from repro.artifacts.store import ArtifactStore
from repro.config import (
    ExecutionConfig,
    FleetConfig,
    ProbeConfig,
    RunOptions,
    ThorConfig,
)
from repro.errors import ConfigError, ResumeError
from repro.fleet import (
    STATE_DONE,
    STATE_QUARANTINED,
    STATE_QUEUED,
    FleetLedger,
    FleetSpec,
    SiteSpec,
    aggregate_digest,
    default_fleet_id,
    format_fleet_report,
    run_fleet,
)
from repro.fleet.driver import SiteOutcome
from repro.io.export import result_digest
from repro.resilience.faults import FaultPlan

DOMAINS = ("ecommerce", "music", "jobs", "travel", "library")


def small_config(cache_dir, **fleet_kwargs) -> ThorConfig:
    return ThorConfig(
        seed=7,
        probing=ProbeConfig(dictionary_queries=10, nonsense_queries=2),
        execution=ExecutionConfig(cache_dir=str(cache_dir)),
        fleet=FleetConfig(**fleet_kwargs),
    )


def spec_for(pairs, **kwargs) -> FleetSpec:
    return FleetSpec(
        sites=tuple(
            SiteSpec(
                site_id=f"{domain}-{seed}",
                domain=domain,
                seed=seed,
                records=30,
            )
            for domain, seed in pairs
        ),
        **kwargs,
    )


def sequential_digests(spec: FleetSpec, config: ThorConfig) -> dict:
    """What N independent ``api.run`` calls produce, site by site."""
    return {
        site.site_id: result_digest(api.run(site.build_source(), config))
        for site in spec.sites
    }


class TestFleetSpec:
    def test_rejects_duplicate_site_ids(self):
        with pytest.raises(ConfigError, match="duplicate"):
            spec_for([("music", 1), ("music", 1)])

    def test_rejects_empty_fleet(self):
        with pytest.raises(ConfigError):
            FleetSpec(sites=())

    def test_rejects_bad_quota(self):
        with pytest.raises(ConfigError):
            spec_for([("music", 1)], quotas=(("acme", 0),))

    def test_fingerprint_tracks_the_job(self):
        a = spec_for([("music", 1), ("jobs", 2)])
        b = spec_for([("music", 1), ("jobs", 2)])
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != spec_for([("music", 1)]).fingerprint()
        assert (
            a.fingerprint()
            != spec_for([("music", 1), ("jobs", 2)], default_quota=1).fingerprint()
        )

    def test_waves_respect_priority_then_submission_order(self):
        spec = FleetSpec(
            sites=(
                SiteSpec(site_id="low", priority=0),
                SiteSpec(site_id="high", priority=5),
                SiteSpec(site_id="mid", priority=2),
            )
        )
        (wave,) = spec.waves()
        assert [s.site_id for s in wave] == ["high", "mid", "low"]

    def test_waves_enforce_tenant_quota(self):
        spec = FleetSpec(
            sites=(
                SiteSpec(site_id="a1", tenant="acme"),
                SiteSpec(site_id="a2", tenant="acme"),
                SiteSpec(site_id="a3", tenant="acme"),
                SiteSpec(site_id="z1", tenant="zeta"),
            ),
            quotas=(("acme", 2),),
        )
        waves = spec.waves()
        assert [[s.site_id for s in wave] for wave in waves] == [
            ["a1", "a2", "z1"],
            ["a3"],
        ]

    def test_default_quota_applies_to_unlisted_tenants(self):
        spec = FleetSpec(
            sites=(
                SiteSpec(site_id="z1", tenant="zeta"),
                SiteSpec(site_id="z2", tenant="zeta"),
            ),
            default_quota=1,
        )
        assert len(spec.waves()) == 2


class TestFleetLedger:
    def test_state_round_trip(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        ledger = FleetLedger.open(store, "f1", "fp", resume=False)
        assert ledger.site_state("s1") == {"state": STATE_QUEUED}
        ledger.set_state("s1", STATE_DONE, digest="abc")
        assert ledger.site_state("s1") == {"state": STATE_DONE, "digest": "abc"}
        assert ledger.completed_digest("s1") == "abc"
        ledger.reset_site("s1")
        assert ledger.completed_digest("s1") is None

    def test_unknown_state_rejected(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        ledger = FleetLedger.open(store, "f1", "fp", resume=False)
        with pytest.raises(ValueError, match="unknown site state"):
            ledger.set_state("s1", "uploading")

    def test_resume_refuses_fingerprint_mismatch(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        FleetLedger.open(store, "f1", "fp-a", resume=False)
        with pytest.raises(ResumeError, match="different FleetSpec"):
            FleetLedger.open(store, "f1", "fp-b", resume=True)

    def test_fresh_open_discards_previous_ledger(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        FleetLedger.open(store, "f1", "fp-a", resume=False)
        FleetLedger.open(store, "f1", "fp-b", resume=False)
        ledger = FleetLedger.open(store, "f1", "fp-b", resume=True)
        assert ledger.fleet_id == "f1"

    def test_resume_with_no_prior_ledger_starts_fresh(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        ledger = FleetLedger.open(store, "new", "fp", resume=True)
        assert ledger.site_state("s1") == {"state": STATE_QUEUED}


class TestAggregateDigest:
    def test_order_and_waves_do_not_matter(self):
        a = SiteOutcome(site_id="a", tenant="t", state=STATE_DONE, digest="1")
        b = SiteOutcome(site_id="b", tenant="t", state=STATE_DONE, digest="2")
        assert aggregate_digest([a, b]) == aggregate_digest([b, a])

    def test_quarantined_sites_are_excluded(self):
        a = SiteOutcome(site_id="a", tenant="t", state=STATE_DONE, digest="1")
        q = SiteOutcome(
            site_id="q", tenant="t", state=STATE_QUARANTINED, error="boom"
        )
        assert aggregate_digest([a, q]) == aggregate_digest([a])

    def test_digest_change_changes_aggregate(self):
        a = SiteOutcome(site_id="a", tenant="t", state=STATE_DONE, digest="1")
        a2 = SiteOutcome(site_id="a", tenant="t", state=STATE_DONE, digest="2")
        assert aggregate_digest([a]) != aggregate_digest([a2])


class TestRunFleet:
    def test_requires_persistent_store(self):
        spec = spec_for([("music", 1)])
        with pytest.raises(ConfigError, match="artifact store"):
            run_fleet(
                spec,
                ThorConfig(execution=ExecutionConfig(artifact_cache="off")),
            )

    def test_matches_sequential_runs(self, tmp_path):
        spec = spec_for([("ecommerce", 7), ("music", 5)])
        config = small_config(tmp_path)
        report = run_fleet(spec, config)
        expected = sequential_digests(spec, config)
        assert {o.site_id: o.digest for o in report.done} == expected
        assert report.aggregate_digest == aggregate_digest(report.outcomes)
        assert not report.quarantined and not report.deferred

    def test_resume_skips_done_sites(self, tmp_path):
        spec = spec_for([("ecommerce", 7), ("music", 5)])
        config = small_config(tmp_path)
        first = run_fleet(spec, config)
        resumed = run_fleet(spec, config, RunOptions(resume=True))
        assert resumed.aggregate_digest == first.aggregate_digest
        assert resumed.sites_resumed == len(spec.sites)
        assert all(o.skipped for o in resumed.outcomes)
        assert resumed.resume_hits == {"site": len(spec.sites)}

    def test_sharded_matches_serial(self, tmp_path):
        spec = spec_for([("ecommerce", 7), ("music", 5), ("jobs", 3)])
        serial = run_fleet(spec, small_config(tmp_path / "serial"))
        sharded = run_fleet(
            spec, small_config(tmp_path / "sharded", site_jobs=2)
        )
        assert sharded.aggregate_digest == serial.aggregate_digest

    def test_drain_defers_then_resume_finishes(self, tmp_path):
        spec = spec_for([("ecommerce", 7), ("music", 5), ("jobs", 3)])
        config = small_config(tmp_path, max_sites_per_run=2)
        drained = run_fleet(spec, config)
        assert len(drained.done) == 2 and len(drained.deferred) == 1
        finished = run_fleet(spec, config, RunOptions(resume=True))
        assert not finished.deferred
        assert finished.resume_hits.get("site") == 2
        reference = run_fleet(
            spec, small_config(tmp_path / "uninterrupted")
        )
        assert finished.aggregate_digest == reference.aggregate_digest

    def test_resume_different_spec_refuses(self, tmp_path):
        config = small_config(tmp_path)
        run_fleet(
            spec_for([("music", 5)]), config, RunOptions(run_id="fixed")
        )
        with pytest.raises(ResumeError, match="different FleetSpec"):
            run_fleet(
                spec_for([("jobs", 3)]),
                config,
                RunOptions(run_id="fixed", resume=True),
            )

    def test_default_fleet_id_is_spec_keyed(self, tmp_path):
        spec = spec_for([("music", 5)])
        report = run_fleet(spec, small_config(tmp_path))
        assert report.fleet_id == default_fleet_id(spec)
        assert report.fleet_id.startswith("fleet-")

    def test_quarantined_site_does_not_sink_the_fleet(self, tmp_path):
        # page_failure_rate=1.0 quarantines every page, so extraction
        # aborts below min_surviving_fraction and the site lands in
        # ``quarantined`` — recorded, not raised.
        spec = spec_for([("music", 5)])
        report = run_fleet(
            spec,
            small_config(tmp_path),
            RunOptions(fault_plan=FaultPlan(seed=1, page_failure_rate=1.0)),
        )
        (outcome,) = report.outcomes
        assert outcome.state == STATE_QUARANTINED
        assert outcome.error and outcome.digest is None
        assert report.aggregate_digest == aggregate_digest([])

    def test_chaos_does_not_change_digests(self, tmp_path):
        spec = spec_for([("ecommerce", 7), ("music", 5)])
        clean = run_fleet(spec, small_config(tmp_path / "clean"))
        chaotic = run_fleet(
            spec,
            small_config(tmp_path / "chaos", site_jobs=2),
            RunOptions(
                fault_plan=FaultPlan(
                    seed=2, worker_crash_rate=0.4, chunk_error_rate=0.3
                )
            ),
        )
        assert chaotic.aggregate_digest == clean.aggregate_digest

    def test_format_fleet_report_carries_the_grep_lines(self, tmp_path):
        spec = spec_for([("music", 5)])
        config = small_config(tmp_path)
        run_fleet(spec, config)
        resumed = run_fleet(spec, config, RunOptions(resume=True))
        text = format_fleet_report(resumed)
        assert f"fleet-digest: {resumed.aggregate_digest}" in text
        assert "sites-resumed: 1" in text
        assert "[skipped: already done]" in text


class TestFleetApiFacade:
    def test_api_run_fleet_is_the_driver(self, tmp_path):
        spec = api.FleetSpec(
            sites=(api.SiteSpec(site_id="music-5", domain="music", seed=5,
                                records=30),)
        )
        config = small_config(tmp_path)
        report = api.run_fleet(spec, config)
        assert isinstance(report, api.FleetReport)
        assert report.digest_for("music-5") == sequential_digests(
            spec, config
        )["music-5"]


#: Distinct (domain, seed) pairs — site ids stay unique.
site_pairs = st.lists(
    st.tuples(st.sampled_from(DOMAINS), st.integers(0, 6)),
    min_size=2,
    max_size=3,
    unique=True,
)


class TestFleetProperties:
    """The headline invariant, property-based: fleet == N sequential
    runs, bitwise, under chaos and through a mid-fleet drain+resume."""

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        pairs=site_pairs,
        chaos=st.booleans(),
        site_jobs=st.sampled_from([1, 2]),
    )
    def test_fleet_matches_sequential(
        self, tmp_path_factory, pairs, chaos, site_jobs
    ):
        tmp_path = tmp_path_factory.mktemp("fleet")
        spec = spec_for(pairs)
        config = small_config(tmp_path, site_jobs=site_jobs)
        plan = (
            FaultPlan(seed=3, worker_crash_rate=0.3, chunk_error_rate=0.2)
            if chaos
            else None
        )
        report = run_fleet(spec, config, RunOptions(fault_plan=plan))
        expected = sequential_digests(
            spec, small_config(tmp_path / "seq")
        )
        assert {o.site_id: o.digest for o in report.done} == expected

    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(pairs=site_pairs, drain_at=st.integers(1, 2))
    def test_drained_and_resumed_fleet_matches_uninterrupted(
        self, tmp_path_factory, pairs, drain_at
    ):
        tmp_path = tmp_path_factory.mktemp("fleet")
        spec = spec_for(pairs)
        drained = run_fleet(
            spec, small_config(tmp_path, max_sites_per_run=drain_at)
        )
        finished = run_fleet(
            spec, small_config(tmp_path), RunOptions(resume=True)
        )
        uninterrupted = run_fleet(
            spec, small_config(tmp_path / "uninterrupted")
        )
        assert finished.aggregate_digest == uninterrupted.aggregate_digest
        if len(spec.sites) > drain_at:
            assert drained.deferred
            assert finished.sites_resumed >= drain_at
