"""Property-style invariants of the full pipeline across seeds/domains.

These are the contracts a downstream consumer relies on, checked over
a spread of simulated sites rather than a single handpicked one.
"""

from __future__ import annotations

import pytest

from repro import Thor, ThorConfig
from repro.deepweb import make_site
from repro.html.paths import resolve_path
from repro.html.tree import TagNode

CASES = [
    ("ecommerce", 101),
    ("music", 102),
    ("library", 103),
    ("jobs", 104),
    ("realestate", 105),
]


@pytest.fixture(scope="module", params=CASES, ids=[f"{d}-{s}" for d, s in CASES])
def run(request):
    domain, seed = request.param
    site = make_site(domain, seed=seed)
    return Thor(ThorConfig(seed=seed)).run(site)


class TestPipelineInvariants:
    def test_pagelet_nodes_belong_to_their_pages(self, run):
        for pagelet in run.pagelets:
            root = pagelet.page.tree.root
            assert pagelet.node.root() is root

    def test_pagelet_paths_resolve_to_their_nodes(self, run):
        for pagelet in run.pagelets:
            assert resolve_path(pagelet.page.tree, pagelet.path) is pagelet.node

    def test_at_most_one_pagelet_per_page(self, run):
        ids = [id(p.page) for p in run.pagelets]
        assert len(ids) == len(set(ids))

    def test_objects_inside_their_pagelet(self, run):
        for part in run.partitioned:
            inside = {id(n) for n in part.pagelet.node.iter_tags()}
            for obj in part.objects:
                assert id(obj.node) in inside

    def test_object_paths_resolve(self, run):
        for part in run.partitioned:
            tree = part.pagelet.page.tree
            for obj in part.objects:
                assert resolve_path(tree, obj.path) is obj.node

    def test_objects_have_content(self, run):
        for part in run.partitioned:
            for obj in part.objects:
                assert obj.text().strip()

    def test_objects_are_disjoint(self, run):
        for part in run.partitioned:
            seen: set[int] = set()
            for obj in part.objects:
                subtree = {id(n) for n in obj.node.iter_tags()}
                assert not (subtree & seen)
                seen |= subtree

    def test_contained_paths_resolve_inside_pagelet(self, run):
        for pagelet in run.pagelets:
            tree = pagelet.page.tree
            inside = {id(n) for n in pagelet.node.iter_tags()}
            for path in pagelet.contained_dynamic_paths:
                node = resolve_path(tree, path)
                assert isinstance(node, TagNode)
                assert id(node) in inside

    def test_clusters_partition_pages(self, run):
        clustering = run.clustering.clustering
        assert clustering.n == len(run.pages)
        covered = sorted(
            i
            for cluster in range(clustering.k)
            for i in clustering.members(cluster)
        )
        assert covered == list(range(len(run.pages)))

    def test_forwarded_clusters_ranked_first(self, run):
        forwarded = len(run.identifications)
        assert 1 <= forwarded <= 2

    def test_quality_floor(self, run):
        """Every simulated site must extract most labeled regions —
        precision ≥ 0.9 against ground truth; recall bounded only by
        the top-m trade-off, so check ≥ 0.5."""
        gold_pages = [
            p for p in run.pages if getattr(p, "gold_pagelet_path", None)
        ]
        exact = sum(
            1
            for p in run.pagelets
            if p.path == getattr(p.page, "gold_pagelet_path", None)
        )
        assert exact / max(1, len(run.pagelets)) >= 0.9
        assert exact / max(1, len(gold_pages)) >= 0.5
